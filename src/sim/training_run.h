// Event-driven simulation of a long training run on a superpod slice: steps
// tick at the workload's step time; cube/host failures interrupt the job;
// recovery differs by fabric:
//   - reconfigurable: the scheduler swaps in a healthy spare cube (OCS
//     reconfiguration + optical link bring-up) and the job restarts from the
//     last checkpoint;
//   - static: the job must wait for the failed cube itself to be repaired
//     (hardware MTTR) before restarting.
// The output — effective goodput (useful step time / wall clock) — is the
// dynamic counterpart of the steady-state Fig. 15b analysis and quantifies
// how the §4.2.2 availability mechanisms play out over a real run.
#pragma once

#include <cstdint>

#include "ctrl/link_init.h"
#include "sim/llm_model.h"
#include "tpu/slice.h"

namespace lightwave::telemetry {
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::sim {

struct TrainingRunConfig {
  LlmSpec workload = Llm1();
  tpu::SliceShape shape{4, 4, 4};
  /// Pod inventory: total cubes and how many the slice uses come from the
  /// shape; the rest are spares (reconfigurable fabric only).
  int pod_cubes = 64;
  /// Per-cube MTBF (hours); failures hit uniformly at random cubes.
  double cube_mtbf_hours = 4000.0;
  /// Hardware repair time for a failed cube (static fabric waits for this).
  double cube_repair_hours = 12.0;
  /// Checkpoint every N steps; a failure loses progress since the last one.
  int checkpoint_interval_steps = 50;
  /// OCS reconfiguration time for the cube swap (MEMS class).
  double reconfig_ms = 25.0;
  ctrl::LinkInitTiming link_init;
  double run_hours = 24.0 * 30.0;  // one month
  std::uint64_t seed = 2718;
  bool reconfigurable = true;
  /// Optional telemetry sink. Records step-time and failure/swap counters,
  /// a stall-duration histogram, a goodput time series keyed by the
  /// simulation clock (hours), and one trace span per downtime event.
  /// nullptr (the default) records nothing.
  telemetry::Hub* hub = nullptr;
};

struct TrainingRunResult {
  std::uint64_t steps_completed = 0;
  std::uint64_t steps_lost_to_rollback = 0;
  int failures = 0;
  int cube_swaps = 0;        // reconfigurable repairs
  double stall_hours = 0.0;  // waiting for hardware repair (static) or spares
  /// Useful compute time / wall-clock.
  double goodput = 0.0;
};

TrainingRunResult SimulateTrainingRun(const TrainingRunConfig& config);

}  // namespace lightwave::sim
