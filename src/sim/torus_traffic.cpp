#include "sim/torus_traffic.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

#include "common/rng.h"

namespace lightwave::sim {

namespace {

std::vector<tpu::SliceChipCoord> AllChips(const tpu::SliceShape& shape) {
  const auto dims = tpu::SliceChipDims(shape);
  std::vector<tpu::SliceChipCoord> chips;
  chips.reserve(static_cast<std::size_t>(dims.x) * dims.y * dims.z);
  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) chips.push_back({x, y, z});
    }
  }
  return chips;
}

}  // namespace

Pattern NeighborShift(const tpu::SliceShape& shape, tpu::Dim dim) {
  const auto dims = tpu::SliceChipDims(shape);
  Pattern pattern;
  for (const auto& chip : AllChips(shape)) {
    auto dst = chip;
    switch (dim) {
      case tpu::Dim::kX: dst.x = (chip.x + 1) % dims.x; break;
      case tpu::Dim::kY: dst.y = (chip.y + 1) % dims.y; break;
      case tpu::Dim::kZ: dst.z = (chip.z + 1) % dims.z; break;
    }
    pattern.emplace_back(chip, dst);
  }
  return pattern;
}

Pattern Transpose(const tpu::SliceShape& shape) {
  const auto dims = tpu::SliceChipDims(shape);
  Pattern pattern;
  for (const auto& chip : AllChips(shape)) {
    tpu::SliceChipCoord dst{chip.y % dims.x, chip.x % dims.y, chip.z};
    pattern.emplace_back(chip, dst);
  }
  return pattern;
}

Pattern Opposite(const tpu::SliceShape& shape) {
  const auto dims = tpu::SliceChipDims(shape);
  Pattern pattern;
  for (const auto& chip : AllChips(shape)) {
    tpu::SliceChipCoord dst{(chip.x + dims.x / 2) % dims.x, (chip.y + dims.y / 2) % dims.y,
                            (chip.z + dims.z / 2) % dims.z};
    pattern.emplace_back(chip, dst);
  }
  return pattern;
}

Pattern RandomPermutation(const tpu::SliceShape& shape, std::uint64_t seed) {
  auto chips = AllChips(shape);
  auto targets = chips;
  common::Rng rng(seed);
  for (std::size_t i = targets.size(); i > 1; --i) {
    std::swap(targets[i - 1], targets[rng.UniformInt(i)]);
  }
  Pattern pattern;
  for (std::size_t i = 0; i < chips.size(); ++i) pattern.emplace_back(chips[i], targets[i]);
  return pattern;
}

PatternAnalysis AnalyzePattern(const tpu::SliceShape& shape, const Pattern& pattern,
                               std::string name, double bytes_per_flow,
                               const tpu::IciLinkSpec& spec) {
  assert(!pattern.empty());
  const tpu::TorusRouter router(shape, spec);
  // Per directed link: flow count.
  std::map<std::tuple<int, int, int, int, int>, int> loads;
  std::int64_t total_hops = 0;
  for (const auto& [src, dst] : pattern) {
    const auto route = router.ComputeRoute(src, dst);
    total_hops += static_cast<std::int64_t>(route.hops.size());
    for (const auto& hop : route.hops) {
      ++loads[std::make_tuple(hop.from.x, hop.from.y, hop.from.z,
                              static_cast<int>(hop.dim), hop.direction > 0 ? 1 : 0)];
    }
  }

  PatternAnalysis analysis;
  analysis.name = std::move(name);
  analysis.total_hops = total_hops;
  analysis.mean_hops_per_flow =
      static_cast<double>(total_hops) / static_cast<double>(pattern.size());
  double sum = 0.0;
  for (const auto& [key, load] : loads) {
    analysis.peak_link_load = std::max(analysis.peak_link_load, load);
    sum += load;
  }
  analysis.mean_link_load = loads.empty() ? 0.0 : sum / static_cast<double>(loads.size());

  // Deterministic single-path routing: the slowest link serializes its
  // flows; everything finishes when it does.
  const double gbytes_per_us = spec.bandwidth_gbps / 8.0 / 1e6;  // per direction
  analysis.completion_us =
      analysis.peak_link_load * (bytes_per_flow / 1e9) / gbytes_per_us;
  const double delivered_gb = pattern.size() * bytes_per_flow / 1e9;
  // Useful link-time consumed vs available on the used links.
  const double used_capacity_gb =
      static_cast<double>(loads.size()) * gbytes_per_us * analysis.completion_us;
  analysis.link_efficiency =
      used_capacity_gb > 0.0
          ? delivered_gb * analysis.mean_hops_per_flow / used_capacity_gb
          : 0.0;
  return analysis;
}

}  // namespace lightwave::sim
