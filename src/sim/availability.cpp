#include "sim/availability.h"

#include <cassert>
#include <cmath>

#include "common/math.h"
#include "common/parallel.h"
#include "telemetry/hub.h"

namespace lightwave::sim {

double FabricAvailability(double ocs_availability, int ocs_count) {
  assert(ocs_availability >= 0.0 && ocs_availability <= 1.0 && ocs_count >= 0);
  return std::pow(ocs_availability, ocs_count);
}

double CubeAvailability(double server_availability, const PodAvailabilityConfig& config) {
  assert(server_availability >= 0.0 && server_availability <= 1.0);
  return std::pow(server_availability, config.units_per_cube);
}

int CommittedSlicesReconfigurable(double server_availability, int cubes_per_slice,
                                  const PodAvailabilityConfig& config) {
  assert(cubes_per_slice >= 1 && cubes_per_slice <= config.cubes);
  const double p = CubeAvailability(server_availability, config);
  const int max_slices = config.cubes / cubes_per_slice;
  int committed = 0;
  for (int n = 1; n <= max_slices; ++n) {
    const double p_enough =
        common::AtLeastKofN(config.cubes, n * cubes_per_slice, p);
    if (p_enough >= config.target_system_availability) {
      committed = n;
    } else {
      break;  // monotone decreasing in n
    }
  }
  return committed;
}

int CommittedSlicesStatic(double server_availability, int cubes_per_slice,
                          const PodAvailabilityConfig& config) {
  assert(cubes_per_slice >= 1 && cubes_per_slice <= config.cubes);
  const double p_cube = CubeAvailability(server_availability, config);
  // A static group works only when all of its cubes are healthy.
  const double p_group = std::pow(p_cube, cubes_per_slice);
  const int groups = config.cubes / cubes_per_slice;
  int committed = 0;
  for (int n = 1; n <= groups; ++n) {
    const double p_enough = common::AtLeastKofN(groups, n, p_group);
    if (p_enough >= config.target_system_availability) {
      committed = n;
    } else {
      break;
    }
  }
  return committed;
}

double GoodputReconfigurable(double server_availability, int cubes_per_slice,
                             const PodAvailabilityConfig& config) {
  return static_cast<double>(CommittedSlicesReconfigurable(server_availability,
                                                           cubes_per_slice, config) *
                             cubes_per_slice) /
         config.cubes;
}

double GoodputStatic(double server_availability, int cubes_per_slice,
                     const PodAvailabilityConfig& config) {
  return static_cast<double>(
             CommittedSlicesStatic(server_availability, cubes_per_slice, config) *
             cubes_per_slice) /
         config.cubes;
}

MonteCarloAvailability SimulateAvailability(double server_availability, int cubes_per_slice,
                                            int slices, int trials, std::uint64_t seed,
                                            const PodAvailabilityConfig& config,
                                            telemetry::Hub* hub) {
  assert(trials > 0 && slices >= 0);
  const double p_cube = CubeAvailability(server_availability, config);
  const int groups = config.cubes / cubes_per_slice;

  // Trials run on the parallel runtime in fixed-size chunks; chunk `c`
  // draws from the independent counter-based stream Rng::Stream(seed, c),
  // so the fleet statistics depend only on (seed, trials) — never on the
  // thread count. Per-chunk tallies are folded in chunk order.
  constexpr std::uint64_t kTrialsPerChunk = 1024;

  struct ChunkTally {
    long long healthy_total = 0;
    int reconfig_ok = 0;
    int static_ok = 0;
  };
  // Per-trial healthy-cube counts, written by disjoint chunk ranges; only
  // needed when telemetry asks for the per-trial series.
  std::vector<int> healthy_per_trial;
  if (hub != nullptr) healthy_per_trial.resize(static_cast<std::size_t>(trials));

  const ChunkTally total = common::parallel::ParallelReduce<ChunkTally>(
      static_cast<std::uint64_t>(trials), kTrialsPerChunk, ChunkTally{},
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) -> ChunkTally {
        common::Rng rng = common::Rng::Stream(seed, chunk);
        ChunkTally tally;
        std::vector<bool> healthy(static_cast<std::size_t>(config.cubes));
        for (std::uint64_t t = begin; t < end; ++t) {
          int healthy_count = 0;
          for (int c = 0; c < config.cubes; ++c) {
            healthy[static_cast<std::size_t>(c)] = rng.Bernoulli(p_cube);
            healthy_count += healthy[static_cast<std::size_t>(c)] ? 1 : 0;
          }
          tally.healthy_total += healthy_count;
          if (hub != nullptr) {
            healthy_per_trial[static_cast<std::size_t>(t)] = healthy_count;
          }
          // Reconfigurable: any healthy cubes compose.
          if (healthy_count >= slices * cubes_per_slice) ++tally.reconfig_ok;
          // Static: count fully-healthy contiguous groups.
          int good_groups = 0;
          for (int g = 0; g < groups; ++g) {
            bool all = true;
            for (int c = g * cubes_per_slice; c < (g + 1) * cubes_per_slice; ++c) {
              if (!healthy[static_cast<std::size_t>(c)]) {
                all = false;
                break;
              }
            }
            good_groups += all ? 1 : 0;
          }
          if (good_groups >= slices) ++tally.static_ok;
        }
        return tally;
      },
      [](ChunkTally acc, ChunkTally partial) {
        acc.healthy_total += partial.healthy_total;
        acc.reconfig_ok += partial.reconfig_ok;
        acc.static_ok += partial.static_ok;
        return acc;
      });

  if (hub != nullptr) {
    // Telemetry is replayed in trial order on this thread after the
    // parallel phase, keeping exports byte-identical across thread counts
    // (timestamps are the trial index — the model has no clock).
    auto& metrics = hub->metrics();
    auto& trial_counter = metrics.GetCounter("lightwave_availability_trials_total");
    // A trial in which the committed reconfigurable slices cannot all be
    // composed is a pod-level downtime event (the Fig. 15b failure mode).
    auto& downtime_counter =
        metrics.GetCounter("lightwave_availability_downtime_events_total");
    auto& healthy_hist = metrics.GetHistogram("lightwave_availability_healthy_cubes");
    auto& healthy_series =
        metrics.GetTimeSeries("lightwave_availability_healthy_cubes_series");
    for (int t = 0; t < trials; ++t) {
      const int healthy_count = healthy_per_trial[static_cast<std::size_t>(t)];
      trial_counter.Inc();
      healthy_hist.Observe(healthy_count);
      healthy_series.Record(static_cast<double>(t), healthy_count);
      if (healthy_count < slices * cubes_per_slice) downtime_counter.Inc();
    }
  }

  MonteCarloAvailability result;
  result.mean_healthy_cubes = static_cast<double>(total.healthy_total) / trials;
  result.reconfig_success_rate = static_cast<double>(total.reconfig_ok) / trials;
  result.static_success_rate = static_cast<double>(total.static_ok) / trials;
  return result;
}

}  // namespace lightwave::sim
