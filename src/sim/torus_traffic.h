// Traffic-pattern analysis on a slice torus under the production
// deterministic routing (§4.2.1: "the routing is deterministic and set by
// the slice configuration"). Routes a whole pattern with the
// dimension-ordered router, accumulates per-link load, and reports the
// bandwidth-limited completion time and channel-load statistics — the
// quantitative form of why slices are shaped to the workload: patterns that
// match the torus (nearest-neighbour rings, as in collectives) use every
// link once, while adversarial permutations concentrate load.
#pragma once

#include <string>
#include <vector>

#include "tpu/routing.h"
#include "tpu/slice.h"

namespace lightwave::sim {

/// A traffic pattern: one (src, dst) flow per chip, all of equal size.
using Pattern = std::vector<std::pair<tpu::SliceChipCoord, tpu::SliceChipCoord>>;

/// Every chip sends to its +1 neighbour along `dim` (ring shift — the
/// building block of the collectives).
Pattern NeighborShift(const tpu::SliceShape& shape, tpu::Dim dim);

/// Every chip (x,y,z) sends to (y,x,z) — transpose-style traffic.
Pattern Transpose(const tpu::SliceShape& shape);

/// Every chip sends to the coordinate-wise opposite corner (worst-case
/// distance).
Pattern Opposite(const tpu::SliceShape& shape);

/// Random permutation (each chip sends to a distinct random chip).
Pattern RandomPermutation(const tpu::SliceShape& shape, std::uint64_t seed);

struct PatternAnalysis {
  std::string name;
  std::int64_t total_hops = 0;
  double mean_hops_per_flow = 0.0;
  int peak_link_load = 0;  // flows sharing the most-loaded link
  double mean_link_load = 0.0;
  /// Completion time for `bytes_per_flow` on every flow, bandwidth-limited
  /// by the most-loaded link.
  double completion_us = 0.0;
  /// Aggregate delivered bytes / (links used x link capacity x time):
  /// 1.0 = every used link busy the whole time.
  double link_efficiency = 0.0;
};

PatternAnalysis AnalyzePattern(const tpu::SliceShape& shape, const Pattern& pattern,
                               std::string name, double bytes_per_flow,
                               const tpu::IciLinkSpec& spec = {});

}  // namespace lightwave::sim
