// Scaling out between superpods (§2.2.2, Fig. 2): models too large for one
// pod combine the intra-pod ICI fabric with the datacenter network. The
// workload is optimized end-to-end: collectives adapted to the ICI-vs-DCN
// bandwidth gap (the ICI provides 50-100x more bandwidth per TPU), slice
// topology optimized within each pod, and the DCN-level lightwave topology
// co-optimized with job placement so the inter-pod rings (Fig. 2c) ride
// fat engineered trunks instead of thin uniform-mesh slices. DCN transfers
// remain on the critical path (§2.2.2), so the exposed (non-overlapped)
// part of the cross-pod gradient all-reduce adds to every step.
#pragma once

#include <memory>

#include "sim/llm_model.h"
#include "tpu/slice.h"

namespace lightwave::sim {

class CollectiveBackend;

struct MultipodConfig {
  int pods = 4;
  /// Aggregate DCN bandwidth per pod (all host NICs combined), Gb/s:
  /// 64 cubes x 16 hosts x 100G NICs. Per chip that is 25 Gb/s vs the
  /// 2400 Gb/s of ICI -- the paper's ~100x gap.
  double dcn_gbps_per_pod = 102'400.0;
  /// Per-hop DCN latency for one ring step (propagation + switching).
  double dcn_hop_us = 50.0;
  /// Fraction of the DCN all-reduce hidden under compute (the paper's
  /// end-to-end optimization overlaps it with the backward pass, but the
  /// tail stays on the critical path).
  double dcn_overlap = 0.6;
  /// How the DCN connects pods.
  enum class DcnMode {
    kUniformMesh,  // pod uplinks spread evenly over all other pods
    kEngineered,   // lightwave DCN reconfigured into the ring the collective
                   // needs (co-optimized placement + topology, §2.2.2)
  };
  DcnMode dcn_mode = DcnMode::kEngineered;
  /// Collective algorithm for the cross-pod gradient all-reduce
  /// (sim/collective_backend.h). Null selects the ring backend
  /// (byte-identical to the pre-backend path). Ring and tree backends run
  /// over the trunks `dcn_mode` provides between neighbouring pods; an
  /// in-network backend streams each pod's full uplink into the
  /// aggregation switch instead, so `dcn_mode` does not constrain it.
  std::shared_ptr<const CollectiveBackend> dcn_backend;
};

struct MultipodStep {
  tpu::SliceShape pod_shape;       // per-pod slice shape used
  double intra_pod_us = 0.0;       // full intra-pod step (compute + ICI comm)
  double dcn_allreduce_us = 0.0;   // cross-pod gradient all-reduce, raw
  double dcn_exposed_us = 0.0;     // after overlap
  double total_us = 0.0;
  double throughput_seq_per_s = 0.0;
  /// Per-TPU bandwidth ratio ICI : DCN (the paper's 50-100x).
  double ici_to_dcn_ratio = 0.0;
};

class MultipodTrainer {
 public:
  explicit MultipodTrainer(LlmPerfModel model = LlmPerfModel{}) : model_(model) {}

  /// Step time training `spec` data-parallel across `config.pods` pods,
  /// each pod running the workload's best intra-pod shape. The global batch
  /// splits across pods; each pod holds a full replica and all-reduces its
  /// gradients over the DCN ring each step.
  MultipodStep StepTime(const LlmSpec& spec, const MultipodConfig& config) const;

  /// Ring bandwidth between adjacent pods under the given DCN mode.
  static double PodRingBandwidthGbps(const MultipodConfig& config);

 private:
  LlmPerfModel model_;
};

}  // namespace lightwave::sim
