// Availability models for Fig. 15. Two views:
//   (a) fabric availability as a function of per-OCS availability and the
//       number of OCSes the transceiver technology requires (96 CWDM4
//       duplex, 48 CWDM4 bidi, 24 CWDM8 bidi) — every OCS must be up for
//       full inter-cube connectivity;
//   (b) pod goodput under a fixed 97% system-availability target: how many
//       same-size slices can be committed given cube failure probability,
//       for a reconfigurable fabric (any healthy cubes compose) vs a static
//       fabric (only the fixed contiguous groups compose).
// A Monte-Carlo failure-injection model cross-checks the analytic math.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lightwave::telemetry {
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::sim {

/// P[all `ocs_count` OCSes up] given a single-OCS availability.
double FabricAvailability(double ocs_availability, int ocs_count);

struct PodAvailabilityConfig {
  int cubes = 64;
  /// Server-equivalent units per cube whose joint health defines cube
  /// health: 16 CPU hosts plus rack-level infrastructure (ToR, PDU, CDU)
  /// counted as 4 more server-equivalents.
  int units_per_cube = 20;
  double target_system_availability = 0.97;
};

/// P[a cube is healthy] for a given per-server availability.
double CubeAvailability(double server_availability, const PodAvailabilityConfig& config = {});

/// Max committed same-size slices (of `cubes_per_slice`) for a
/// reconfigurable fabric: largest n with P[>= n*m healthy cubes] >= target.
int CommittedSlicesReconfigurable(double server_availability, int cubes_per_slice,
                                  const PodAvailabilityConfig& config = {});

/// Same for a static fabric: slices are the fixed partition of the pod into
/// contiguous groups; largest n with P[>= n fully-healthy groups] >= target.
int CommittedSlicesStatic(double server_availability, int cubes_per_slice,
                          const PodAvailabilityConfig& config = {});

/// Goodput = committed TPUs / pod TPUs for either fabric kind.
double GoodputReconfigurable(double server_availability, int cubes_per_slice,
                             const PodAvailabilityConfig& config = {});
double GoodputStatic(double server_availability, int cubes_per_slice,
                     const PodAvailabilityConfig& config = {});

struct MonteCarloAvailability {
  double mean_healthy_cubes = 0.0;
  /// Fraction of trials in which n committed reconfigurable slices were all
  /// satisfiable.
  double reconfig_success_rate = 0.0;
  /// Same for the static partition.
  double static_success_rate = 0.0;
};

/// Trial-based cross-check: samples unit failures, asks whether `slices`
/// slices of `cubes_per_slice` can be composed under each fabric. When a
/// telemetry hub is given, records trial/downtime-event counters and the
/// per-trial healthy-cube histogram (timestamps are the trial index — the
/// model has no clock — keeping exports deterministic). Trials replicate on
/// the parallel runtime (common/parallel.h) with one counter-based RNG
/// stream per chunk: results and telemetry are byte-identical at any
/// LIGHTWAVE_THREADS setting.
MonteCarloAvailability SimulateAvailability(double server_availability, int cubes_per_slice,
                                            int slices, int trials, std::uint64_t seed,
                                            const PodAvailabilityConfig& config = {},
                                            telemetry::Hub* hub = nullptr);

}  // namespace lightwave::sim
