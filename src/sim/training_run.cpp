#include "sim/training_run.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "telemetry/hub.h"

namespace lightwave::sim {

TrainingRunResult SimulateTrainingRun(const TrainingRunConfig& config) {
  assert(config.shape.CubeCount() <= config.pod_cubes);
  common::Rng rng(config.seed);
  const LlmPerfModel model;
  const double step_hours =
      model.StepTime(config.workload, config.shape).total_us * 1e-6 / 3600.0;
  const double checkpoint_hours = config.checkpoint_interval_steps * step_hours;
  const double swap_downtime_hours =
      (config.reconfig_ms * 1e-3 + config.link_init.TotalBringupUs() * 1e-6) / 3600.0 +
      step_hours;  // + checkpoint reload, modeled as one step time

  // Telemetry (optional): timestamps below are the sim loop's own clock
  // (`now`, in hours), never wall-clock, so recordings are deterministic.
  telemetry::Hub* hub = config.hub;
  const char* fabric_label = config.reconfigurable ? "reconfigurable" : "static";
  telemetry::Counter* failure_counter = nullptr;
  telemetry::Counter* swap_counter = nullptr;
  telemetry::HistogramMetric* stall_hist = nullptr;
  telemetry::TimeSeries* goodput_series = nullptr;
  if (hub != nullptr) {
    auto& metrics = hub->metrics();
    const telemetry::LabelSet labels{{"fabric", fabric_label}};
    metrics.GetGauge("lightwave_training_step_time_hours", labels).Set(step_hours);
    failure_counter = &metrics.GetCounter("lightwave_training_failures_total", labels);
    swap_counter = &metrics.GetCounter("lightwave_training_cube_swaps_total", labels);
    stall_hist = &metrics.GetHistogram("lightwave_training_stall_hours", labels);
    goodput_series = &metrics.GetTimeSeries("lightwave_training_goodput_series", labels);
  }

  const int slice_cubes = config.shape.CubeCount();
  int spare_pool = config.pod_cubes - slice_cubes;

  TrainingRunResult result;
  double now = 0.0;
  double useful = 0.0;            // accumulated useful compute time
  double since_checkpoint = 0.0;  // useful time since the last checkpoint
  // Completion times of cubes under hardware repair (they rejoin the pool).
  std::priority_queue<double, std::vector<double>, std::greater<>> repairs;

  const double failure_rate = config.pod_cubes / config.cube_mtbf_hours;  // per hour
  while (now < config.run_hours) {
    const double to_failure = rng.Exponential(failure_rate);
    const double horizon = std::min(now + to_failure, config.run_hours);
    // Progress until the next event.
    double progress = horizon - now;
    now = horizon;
    useful += progress;
    since_checkpoint = std::fmod(since_checkpoint + progress, checkpoint_hours);
    if (now >= config.run_hours) break;

    // Return any repaired cubes whose MTTR elapsed.
    while (!repairs.empty() && repairs.top() <= now) {
      ++spare_pool;
      repairs.pop();
    }

    // A cube failed somewhere in the pod.
    const bool hit_slice =
        rng.NextDouble() < static_cast<double>(slice_cubes) / config.pod_cubes;
    if (!hit_slice) {
      // An idle spare died: pool shrinks until its repair completes.
      if (spare_pool > 0) {
        --spare_pool;
        repairs.push(now + config.cube_repair_hours);
      }
      continue;
    }

    ++result.failures;
    if (failure_counter != nullptr) failure_counter->Inc();
    const double downtime_started = now;
    // Roll back to the last checkpoint.
    useful -= since_checkpoint;
    result.steps_lost_to_rollback +=
        static_cast<std::uint64_t>(since_checkpoint / step_hours);
    since_checkpoint = 0.0;
    // The failed cube goes to hardware repair either way.
    repairs.push(now + config.cube_repair_hours);

    if (config.reconfigurable) {
      if (spare_pool == 0) {
        // Stall until the earliest repair returns a cube to the pool.
        if (!repairs.empty()) {
          const double wait = std::max(0.0, repairs.top() - now);
          result.stall_hours += wait;
          now += wait;
          while (!repairs.empty() && repairs.top() <= now) {
            ++spare_pool;
            repairs.pop();
          }
        }
      }
      if (spare_pool > 0) {
        --spare_pool;
        ++result.cube_swaps;
        if (swap_counter != nullptr) swap_counter->Inc();
        now += swap_downtime_hours;
        result.stall_hours += swap_downtime_hours;
      }
    } else {
      // Static fabric: wait out this cube's hardware repair, then reload.
      const double wait = config.cube_repair_hours + step_hours;
      result.stall_hours += wait;
      now += wait;
      while (!repairs.empty() && repairs.top() <= now) {
        ++spare_pool;
        repairs.pop();
      }
    }

    if (hub != nullptr) {
      // One downtime span per failure (checkpoint rollback through restart),
      // plus running goodput sampled at the recovery point.
      const std::uint64_t span =
          hub->tracer().Begin("training_downtime", downtime_started);
      hub->tracer().Annotate(span, "fabric", fabric_label);
      hub->tracer().End(span, now);
      stall_hist->Observe(now - downtime_started);
      goodput_series->Record(now, now > 0.0 ? useful / now : 0.0);
    }
  }

  result.steps_completed = static_cast<std::uint64_t>(useful / step_hours);
  result.goodput = config.run_hours > 0.0 ? useful / config.run_hours : 0.0;
  if (hub != nullptr) {
    hub->metrics()
        .GetGauge("lightwave_training_goodput", {{"fabric", fabric_label}})
        .Set(result.goodput);
  }
  return result;
}

}  // namespace lightwave::sim
