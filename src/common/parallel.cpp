#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace lightwave::common::parallel {

namespace {

std::atomic<PoolObserver*> g_observer{nullptr};

/// True while the current thread is executing a chunk body; nested
/// ParallelFor calls from such a thread run serially inline.
thread_local bool t_in_region = false;

/// Worker slot of the current thread inside a region's utilization vector:
/// 0 for the region's calling thread, 1..N for pool workers.
thread_local int t_worker_slot = 0;

/// One ParallelFor invocation. Shared between the calling thread and the
/// pool workers through a shared_ptr so late-dequeued runner tasks stay
/// valid after the region completed.
struct Region {
  std::uint64_t n = 0;
  std::uint64_t chunk_size = 0;
  std::uint64_t chunks = 0;
  const ChunkBody* body = nullptr;
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done{0};
  /// Slot per chunk; only the owning chunk writes it.
  std::vector<std::exception_ptr> errors;
  /// Slot per worker (0 = caller); each slot is written by one thread.
  std::vector<std::uint64_t> chunks_per_worker;
  /// Completion handshake only (`done` is the actual state, and it is
  /// atomic): the mutex orders the final notify against the caller's wait.
  lw::Mutex mu{"parallel.region", lw::rank::kParallelRegion};
  lw::CondVar cv;
};

/// Claims and executes chunks until the region is drained. Returns once no
/// chunk is left to claim.
void RunChunks(Region& region) {
  PoolObserver* const observer = g_observer.load(std::memory_order_acquire);
  const bool outer = !t_in_region;
  t_in_region = true;
  for (;;) {
    const std::uint64_t chunk = region.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= region.chunks) break;
    const auto [begin, end] = ChunkBounds(region.n, region.chunk_size, chunk);
    try {
      (*region.body)(begin, end, chunk);
    } catch (...) {
      region.errors[static_cast<std::size_t>(chunk)] = std::current_exception();
    }
    region.chunks_per_worker[static_cast<std::size_t>(t_worker_slot)]++;
    if (observer != nullptr) observer->OnChunkExecuted();
    if (region.done.fetch_add(1, std::memory_order_acq_rel) + 1 == region.chunks) {
      // Last chunk: wake the calling thread if it is already waiting.
      lw::MutexLock lock(region.mu);
      region.cv.NotifyAll();
    }
  }
  if (outer) t_in_region = false;
}

class ThreadPool {
 public:
  explicit ThreadPool(int threads) : threads_(threads) {
    for (int i = 1; i < threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      lw::MutexLock lock(mu_);
      stopped_ = true;
    }
    cv_.NotifyAll();
    for (auto& w : workers_) w.join();
    // Contract: nothing may execute after shutdown — the queue must have
    // been fully drained by the joining workers.
    lw::MutexLock lock(mu_);
    LW_DCHECK(queue_.empty()) << "thread pool destroyed with queued tasks";
  }

  int threads() const { return threads_; }

  void Submit(std::shared_ptr<Region> region, int runners) {
    PoolObserver* const observer = g_observer.load(std::memory_order_acquire);
    std::size_t depth = 0;
    {
      lw::MutexLock lock(mu_);
      LW_CHECK(!stopped_) << "Submit after thread-pool shutdown";
      for (int i = 0; i < runners; ++i) queue_.push_back(region);
      depth = queue_.size();
    }
    cv_.NotifyAll();
    if (observer != nullptr) observer->OnQueueDepth(depth);
  }

 private:
  void WorkerLoop(int slot) {
    t_worker_slot = slot;
    for (;;) {
      std::shared_ptr<Region> region;
      {
        lw::MutexLock lock(mu_);
        while (!stopped_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stopped_ && drained
        region = std::move(queue_.front());
        queue_.pop_front();
        if (PoolObserver* observer = g_observer.load(std::memory_order_acquire)) {
          observer->OnQueueDepth(queue_.size());
        }
      }
      LW_DCHECK(region != nullptr) << "null region in pool queue";
      RunChunks(*region);
    }
  }

  const int threads_;
  lw::Mutex mu_{"parallel.pool", lw::rank::kPoolQueue};
  lw::CondVar cv_;
  std::deque<std::shared_ptr<Region>> queue_ LW_GUARDED_BY(mu_);
  bool stopped_ LW_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

int DefaultThreads() {
  if (const char* env = std::getenv("LIGHTWAVE_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

lw::Mutex& PoolMutex() {
  static lw::Mutex mu("parallel.registry", lw::rank::kPoolRegistry);
  return mu;
}

std::unique_ptr<ThreadPool>& PoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

/// The process-wide pool, created on first use. Returns nullptr when the
/// configured thread count is 1 (serial mode needs no pool).
ThreadPool* GlobalPool() {
  lw::MutexLock lock(PoolMutex());
  auto& slot = PoolSlot();
  if (slot == nullptr) {
    const int threads = DefaultThreads();
    if (threads <= 1) return nullptr;
    slot = std::make_unique<ThreadPool>(threads);
  }
  return slot.get();
}

/// Debug audit (LW_DCHECK): the chunk ranges partition [0, n) exactly —
/// contiguous, non-overlapping, and jointly exhaustive.
bool PartitionIsExact(std::uint64_t n, std::uint64_t chunk_size, std::uint64_t chunks) {
  std::uint64_t cursor = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = ChunkBounds(n, chunk_size, c);
    if (begin != cursor || end <= begin || end > n) return false;
    cursor = end;
  }
  return cursor == n;
}

}  // namespace

PoolObserver* SetPoolObserver(PoolObserver* observer) {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

int Threads() {
  lw::MutexLock lock(PoolMutex());
  auto& slot = PoolSlot();
  return slot != nullptr ? slot->threads() : DefaultThreads();
}

void SetThreads(int threads) {
  LW_CHECK(threads >= 1) << "thread count must be >= 1";
  LW_CHECK(!t_in_region) << "SetThreads from inside a parallel region";
  lw::MutexLock lock(PoolMutex());
  auto& slot = PoolSlot();
  slot.reset();  // joins existing workers
  if (threads > 1) slot = std::make_unique<ThreadPool>(threads);
}

std::uint64_t NumChunks(std::uint64_t n, std::uint64_t chunk_size) {
  if (n == 0) return 0;
  if (chunk_size == 0) {
    // Automatic policy: a fixed upper bound on chunk count, so the
    // partition is identical on every machine.
    chunk_size = (n + kDefaultMaxChunks - 1) / kDefaultMaxChunks;
    if (chunk_size == 0) chunk_size = 1;
  }
  return (n + chunk_size - 1) / chunk_size;
}

std::pair<std::uint64_t, std::uint64_t> ChunkBounds(std::uint64_t n,
                                                    std::uint64_t chunk_size,
                                                    std::uint64_t chunk) {
  if (chunk_size == 0) {
    chunk_size = (n + kDefaultMaxChunks - 1) / kDefaultMaxChunks;
    if (chunk_size == 0) chunk_size = 1;
  }
  const std::uint64_t begin = chunk * chunk_size;
  const std::uint64_t end = begin + chunk_size < n ? begin + chunk_size : n;
  return {begin, end};
}

void ParallelFor(std::uint64_t n, std::uint64_t chunk_size, const ChunkBody& body) {
  if (n == 0) return;
  const std::uint64_t chunks = NumChunks(n, chunk_size);
  LW_DCHECK(PartitionIsExact(n, chunk_size, chunks))
      << "chunk ranges must partition the input exactly";

  ThreadPool* const pool = t_in_region ? nullptr : GlobalPool();
  PoolObserver* const observer = g_observer.load(std::memory_order_acquire);
  const int pool_threads = pool != nullptr ? pool->threads() : 1;
  if (observer != nullptr && !t_in_region) {
    observer->OnRegionBegin(n, chunks, pool_threads);
  }

  auto region = std::make_shared<Region>();
  region->n = n;
  region->chunk_size = chunk_size;
  region->chunks = chunks;
  region->body = &body;
  region->errors.resize(static_cast<std::size_t>(chunks));
  region->chunks_per_worker.assign(static_cast<std::size_t>(pool_threads), 0);

  if (pool != nullptr && chunks > 1) {
    // One runner per worker that could usefully participate; each runner
    // claims chunks from the shared counter until the region drains.
    const int runners =
        static_cast<int>(std::min<std::uint64_t>(chunks - 1, pool_threads - 1));
    pool->Submit(region, runners);
  }
  // The calling thread always participates (and is the whole show in serial
  // or nested mode).
  RunChunks(*region);
  if (region->done.load(std::memory_order_acquire) != chunks) {
    lw::MutexLock lock(region->mu);
    while (region->done.load(std::memory_order_acquire) != chunks) {
      region->cv.Wait(region->mu);
    }
  }

  if (observer != nullptr && !t_in_region) {
    observer->OnRegionEnd(region->chunks_per_worker);
  }

  // Deterministic error propagation: the lowest-indexed chunk failure wins,
  // regardless of execution order.
  for (auto& error : region->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace lightwave::common::parallel
