// Deterministic parallel runtime for the Monte-Carlo evaluation harness.
//
// The simulator's dominant workloads — the Fig. 13 pod-wide BER survey, the
// Fig. 11 OIM Monte-Carlo sweep, the Fig. 15 availability fleets, the
// Fig. 10 loss survey — are embarrassingly parallel, but EXPERIMENTS.md
// promises fixed-seed reproducibility. This runtime squares the two:
//
//   * Work over [0, n) is split into chunks whose boundaries depend ONLY on
//     (n, chunk_size), never on the thread count or scheduling order.
//   * Each chunk is identified by its index; stochastic chunk bodies derive
//     an independent counter-based stream via common::Rng::Stream(seed,
//     chunk_index), so no RNG state crosses a chunk boundary.
//   * Reductions fold per-chunk partials in ascending chunk order on the
//     calling thread.
//
// Together these make every result byte-identical across thread counts
// (including 1) and across runs. The thread count is a runtime knob:
// LIGHTWAVE_THREADS in the environment (default: hardware concurrency;
// "1" restores fully serial execution), or SetThreads() from code.
//
// Exceptions thrown by chunk bodies are captured per chunk and the lowest-
// indexed one is rethrown on the calling thread — again deterministic.
// Nested ParallelFor calls (a chunk body that itself calls ParallelFor) are
// detected via a thread-local guard and run serially inline with identical
// chunk boundaries, so nesting is safe and changes nothing numerically.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lightwave::common::parallel {

/// Chunk body: half-open index range [begin, end) plus the chunk index the
/// range occupies in the deterministic partition of [0, n).
using ChunkBody =
    std::function<void(std::uint64_t begin, std::uint64_t end, std::uint64_t chunk)>;

/// Observation hooks for the pool (the telemetry bridge; see
/// telemetry::ParallelTelemetrySink). Implementations must be thread-safe:
/// OnChunkExecuted and OnQueueDepth fire from worker threads.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  /// A parallel region is about to run on the calling thread.
  virtual void OnRegionBegin(std::uint64_t items, std::uint64_t chunks, int threads) {
    (void)items;
    (void)chunks;
    (void)threads;
  }
  /// The region finished; `chunks_per_worker[0]` is the calling thread's
  /// share, slots 1..threads are the pool workers (worker-utilization data).
  virtual void OnRegionEnd(const std::vector<std::uint64_t>& chunks_per_worker) {
    (void)chunks_per_worker;
  }
  /// One chunk body completed (maps to lightwave_parallel_tasks_total).
  virtual void OnChunkExecuted() {}
  /// Pending runner-task count in the pool queue after an enqueue/dequeue.
  virtual void OnQueueDepth(std::size_t depth) { (void)depth; }
};

/// Installs a process-wide observer; returns the previous one (nullptr for
/// none). Pass nullptr to detach.
PoolObserver* SetPoolObserver(PoolObserver* observer);

/// Configured worker count of the process-wide pool: LIGHTWAVE_THREADS when
/// set (clamped to >= 1), otherwise hardware concurrency. 1 means fully
/// serial execution on the calling thread.
int Threads();

/// Reconfigures the process-wide pool (joins existing workers first). Used
/// by tests to prove thread-count invariance and by embedders as a runtime
/// knob. Must not be called from inside a parallel region.
void SetThreads(int threads);

/// Number of chunks the deterministic partition of [0, n) produces for a
/// given chunk size. Pure in (n, chunk_size); chunk_size == 0 selects the
/// automatic policy (at most kDefaultMaxChunks chunks).
std::uint64_t NumChunks(std::uint64_t n, std::uint64_t chunk_size);

/// The half-open range of chunk `chunk` in that partition.
std::pair<std::uint64_t, std::uint64_t> ChunkBounds(std::uint64_t n,
                                                    std::uint64_t chunk_size,
                                                    std::uint64_t chunk);

/// Automatic chunking bound: auto mode never produces more chunks than this
/// (keeps per-chunk scheduling overhead negligible while still feeding wide
/// machines). Fixed so partitions are machine-independent.
inline constexpr std::uint64_t kDefaultMaxChunks = 256;

/// Runs `body` over every chunk of [0, n). Chunks execute concurrently on
/// the process-wide pool (the calling thread participates); results must
/// only depend on the chunk's own range and index. Rethrows the lowest-
/// indexed chunk exception after all chunks finish.
void ParallelFor(std::uint64_t n, std::uint64_t chunk_size, const ChunkBody& body);

/// Per-index map with deterministic output order: out[i] = fn(i).
template <typename Fn>
auto ParallelMap(std::uint64_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::uint64_t{0}))> {
  using R = decltype(fn(std::uint64_t{0}));
  std::vector<R> out(static_cast<std::size_t>(n));
  ParallelFor(n, 1,
              [&](std::uint64_t begin, std::uint64_t end, std::uint64_t /*chunk*/) {
                for (std::uint64_t i = begin; i < end; ++i) {
                  out[static_cast<std::size_t>(i)] = fn(i);
                }
              });
  return out;
}

/// Chunked reduction: `chunk_fn(begin, end, chunk) -> T` computes a partial
/// per chunk; partials are combined left-to-right in chunk order on the
/// calling thread, so the result is independent of scheduling.
template <typename T, typename ChunkFn, typename Combine>
T ParallelReduce(std::uint64_t n, std::uint64_t chunk_size, T init, ChunkFn&& chunk_fn,
                 Combine&& combine) {
  const std::uint64_t chunks = NumChunks(n, chunk_size);
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  ParallelFor(n, chunk_size,
              [&](std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) {
                partials[static_cast<std::size_t>(chunk)] = chunk_fn(begin, end, chunk);
              });
  T acc = std::move(init);
  for (auto& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace lightwave::common::parallel
