#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace lightwave::common {

void SampleSet::Add(double x) {
  if (!samples_.empty() && x < samples_.back()) sorted_ = false;
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::min() const {
  LW_CHECK(!samples_.empty()) << "min() of an empty sample set";
  EnsureSorted();
  return samples_.front();
}

double SampleSet::max() const {
  LW_CHECK(!samples_.empty()) << "max() of an empty sample set";
  EnsureSorted();
  return samples_.back();
}

double SampleSet::mean() const {
  LW_CHECK(!samples_.empty()) << "mean() of an empty sample set";
  return sum_ / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  LW_CHECK(!samples_.empty()) << "stddev() of an empty sample set";
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double SampleSet::Percentile(double p) const {
  // Empty sets answer 0.0 instead of asserting: the telemetry exporters
  // query percentiles of histograms that may never have observed a sample.
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(static_cast<std::size_t>(bins), 0) {
  LW_CHECK(hi > lo && bins > 0) << "lo=" << lo << " hi=" << hi << " bins=" << bins;
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
  }
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::BinCenter(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::string Histogram::Render(int max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (int b = 0; b < bins(); ++b) {
    const std::size_t c = counts_[static_cast<std::size_t>(b)];
    const int w = static_cast<int>(static_cast<double>(c) / static_cast<double>(peak) *
                                   max_width);
    out.width(9);
    out.precision(3);
    out << std::fixed << BinCenter(b) << " |" << std::string(static_cast<std::size_t>(w), '#')
        << " " << c << "\n";
  }
  return out.str();
}

}  // namespace lightwave::common
