// Minimal expected-style result type used across the control plane. C++20
// lacks std::expected; this is the subset the library needs: a value or an
// error message, never both, with checked access.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lightwave::common {

/// Error carried by a failed Result. A short machine-readable code plus a
/// human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kResourceExhausted,
    kFailedPrecondition,
    kUnavailable,
    kInternal,
  };
  Code code = Code::kInternal;
  std::string message;
};

inline const char* ToString(Error::Code c) {
  switch (c) {
    case Error::Code::kInvalidArgument: return "invalid-argument";
    case Error::Code::kNotFound: return "not-found";
    case Error::Code::kAlreadyExists: return "already-exists";
    case Error::Code::kResourceExhausted: return "resource-exhausted";
    case Error::Code::kFailedPrecondition: return "failed-precondition";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kInternal: return "internal";
  }
  return "unknown";
}

/// Value-or-error. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : data_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

inline Error InvalidArgument(std::string msg) {
  return Error{Error::Code::kInvalidArgument, std::move(msg)};
}
inline Error NotFound(std::string msg) { return Error{Error::Code::kNotFound, std::move(msg)}; }
inline Error AlreadyExists(std::string msg) {
  return Error{Error::Code::kAlreadyExists, std::move(msg)};
}
inline Error ResourceExhausted(std::string msg) {
  return Error{Error::Code::kResourceExhausted, std::move(msg)};
}
inline Error FailedPrecondition(std::string msg) {
  return Error{Error::Code::kFailedPrecondition, std::move(msg)};
}
inline Error Unavailable(std::string msg) {
  return Error{Error::Code::kUnavailable, std::move(msg)};
}
inline Error Internal(std::string msg) { return Error{Error::Code::kInternal, std::move(msg)}; }

}  // namespace lightwave::common
