// Streaming summary statistics and fixed-bin histograms used by the hardware
// evaluation benches (insertion-loss / BER distributions) and the simulators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lightwave::common {

/// Accumulates samples and answers summary queries. Stores the samples so
/// that exact percentiles are available; intended for evaluation-sized data
/// (up to a few million points).
class SampleSet {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Exact percentile by nearest-rank; p clamped to [0, 100]. Returns 0.0
  /// for an empty set (safe for never-observed telemetry histograms).
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;

  void EnsureSorted() const;
};

/// Fixed-width binning over [lo, hi) with underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(int bin) const { return counts_[static_cast<std::size_t>(bin)]; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double BinCenter(int bin) const;

  /// Renders an ASCII bar chart, one row per bin, widths normalized to the
  /// fullest bin. Used by the figure benches to print paper-style plots.
  std::string Render(int max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace lightwave::common
