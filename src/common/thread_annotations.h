// Clang thread-safety-analysis (TSA) attribute shims. The locking
// discipline of the concurrent subsystems (telemetry plane, parallel
// runtime, fleet shards) is declared in the types themselves — which mutex
// guards which member, which private methods require a lock held — and the
// clang CI leg compiles with -Werror=thread-safety so the declarations are
// a gate, not documentation. GCC (the container's baked-in toolchain) sees
// no-ops; the contracts still execute dynamically through the lock-rank
// detector in common/sync.h.
//
// The macros mirror the capability vocabulary from the Clang TSA docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed LW_ to
// match the repo's contract macros:
//
//   LW_GUARDED_BY(mu)     member: reads/writes require `mu` held
//   LW_PT_GUARDED_BY(mu)  pointer member: the pointee requires `mu`
//   LW_REQUIRES(mu)       function: caller must hold `mu`
//   LW_EXCLUDES(mu)       function: caller must NOT hold `mu` (it locks it)
//   LW_ACQUIRE(...)       function acquires the capability and keeps it
//   LW_RELEASE(...)       function releases the capability
//   LW_CAPABILITY(kind)   class is a lockable capability (lw::Mutex)
//   LW_SCOPED_CAPABILITY  RAII class that acquires in ctor, releases in dtor
#pragma once

#if defined(__clang__)
#define LW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LW_THREAD_ANNOTATION(x)  // no-op under GCC / MSVC
#endif

#define LW_CAPABILITY(x) LW_THREAD_ANNOTATION(capability(x))
#define LW_SCOPED_CAPABILITY LW_THREAD_ANNOTATION(scoped_lockable)

#define LW_GUARDED_BY(x) LW_THREAD_ANNOTATION(guarded_by(x))
#define LW_PT_GUARDED_BY(x) LW_THREAD_ANNOTATION(pt_guarded_by(x))

#define LW_ACQUIRED_BEFORE(...) LW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LW_ACQUIRED_AFTER(...) LW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define LW_REQUIRES(...) LW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LW_REQUIRES_SHARED(...) \
  LW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define LW_ACQUIRE(...) LW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LW_ACQUIRE_SHARED(...) \
  LW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define LW_RELEASE(...) LW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LW_RELEASE_SHARED(...) \
  LW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define LW_TRY_ACQUIRE(...) LW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define LW_EXCLUDES(...) LW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LW_ASSERT_CAPABILITY(x) LW_THREAD_ANNOTATION(assert_capability(x))
#define LW_RETURN_CAPABILITY(x) LW_THREAD_ANNOTATION(lock_returned(x))

#define LW_NO_THREAD_SAFETY_ANALYSIS LW_THREAD_ANNOTATION(no_thread_safety_analysis)
