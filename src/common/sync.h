// Annotated synchronization vocabulary for the whole tree. Every mutex and
// condition variable in lightwave code goes through these wrappers (enforced
// by scripts/lint_locks.py; raw std primitives are allowed only inside this
// header and sync.cpp), which buys two layers of verification on top of
// TSan's dynamic racing:
//
//   1. COMPILE TIME — the types carry Clang thread-safety capabilities
//      (common/thread_annotations.h), so `-Werror=thread-safety` on the
//      clang CI leg rejects any guarded-member access outside its mutex and
//      any lock-requiring method called without the lock, on every path,
//      including ones no test executes.
//
//   2. RUN TIME (the lock-rank detector) — ordering bugs TSA cannot see.
//      Each lw::Mutex optionally carries a RANK from the repo-wide lock
//      hierarchy below (DESIGN.md §5.5 has the full table). While the
//      detector is enabled, every thread tracks its held-lock stack and the
//      process accumulates the observed acquired-before graph:
//        - acquiring a ranked mutex while holding one of equal or higher
//          rank trips LW_CHECK (rank order is strictly increasing inward);
//        - acquiring any mutex that closes a cycle in the acquired-before
//          graph trips LW_CHECK with BOTH lock sets — the current thread's
//          held stack and the held stack recorded when the opposite edge
//          was first observed — so an AB/BA inversion is caught the first
//          time both orders have ever been seen, not only when the timing
//          actually deadlocks;
//        - re-entrant acquisition and unlocking a mutex the thread does not
//          hold trip immediately (std::mutex makes both undefined).
//      Default: enabled in Debug builds (!NDEBUG), disabled in optimized
//      builds; the LIGHTWAVE_LOCK_RANK environment variable (0/1) overrides
//      the default, and tests force it with ScopedDeadlockDetector.
//
// The namespace is deliberately the short `lw::` — sync primitives appear
// on nearly every line of concurrent code and read as vocabulary, not as a
// subsystem: `lw::MutexLock lock(mu_);`.
#pragma once

#include <cstdint>

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace lw {

/// Mutexes constructed without a rank skip the rank check (the cycle
/// detector still covers them).
inline constexpr int kNoRank = -1;

/// The repo-wide lock hierarchy: ranks must be acquired in strictly
/// increasing order, so outermost (coarsest) locks rank lowest and locks
/// that may be taken under anything — the telemetry plane, the check
/// handler — rank highest. DESIGN.md §5.5 is the authoritative table of
/// which mutex guards what; keep the two in sync.
namespace rank {
inline constexpr int kFleetAdmission = 10;   // fleet::AdmissionQueue::mu_
inline constexpr int kShardHandoff = 20;     // fleet::Shard::handoff_mu_
inline constexpr int kShardStats = 30;       // fleet::Shard::stats_mu_
inline constexpr int kWalCompact = 35;       // journal::Wal::compact_mu_
inline constexpr int kPoolRegistry = 40;     // parallel global pool slot
inline constexpr int kPoolQueue = 45;        // parallel ThreadPool::mu_
inline constexpr int kParallelRegion = 48;   // parallel Region::mu
inline constexpr int kTelemetryRegistry = 90;  // MetricsRegistry::mu_
inline constexpr int kTracer = 91;             // Tracer::mu_
inline constexpr int kTelemetrySeries = 92;    // Histogram/TimeSeries::mu_
inline constexpr int kCheckHandler = 100;      // check.cpp handler slot
}  // namespace rank

/// Annotated exclusive mutex. Non-recursive (like std::mutex); Lock/Unlock
/// feed the lock-rank detector, lock/unlock are BasicLockable aliases for
/// CondVar. Mutexes are named for detector diagnostics — the name appears
/// in both lock sets when a violation trips.
class LW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("", kNoRank) {}
  explicit Mutex(const char* name, int rank = kNoRank);
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LW_ACQUIRE();
  void Unlock() LW_RELEASE();

  /// BasicLockable interface (std::condition_variable_any inside
  /// CondVar::Wait releases and reacquires through these, so the detector's
  /// held stack stays exact across a wait).
  void lock() LW_ACQUIRE() { Lock(); }
  void unlock() LW_RELEASE() { Unlock(); }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
  int rank_;
  /// Stable detector id (monotone, never reused), assigned at construction.
  std::uint64_t id_;
};

/// RAII lock scope, the only idiom for taking an lw::Mutex:
///   lw::MutexLock lock(mu_);
class LW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to lw::Mutex. No predicate overload on purpose:
/// TSA cannot see capabilities inside a predicate lambda, so waits are
/// written as explicit loops in the annotated caller —
///   lw::MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning.
  void Wait(Mutex& mu) LW_REQUIRES(mu);
  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable_any cv_;
};

/// --- lock-rank detector controls ----------------------------------------

/// True while the detector checks every acquire/release. Resolved on first
/// query: Debug default on, NDEBUG default off, LIGHTWAVE_LOCK_RANK=0/1
/// overrides (same pattern as common::ValidationEnabled()).
bool DeadlockDetectorEnabled();
void SetDeadlockDetectorEnabled(bool enabled);

/// RAII detector toggle for tests (sync_test forces it on so the detector
/// is exercised under every CI leg, including the NDEBUG sanitizer builds).
class ScopedDeadlockDetector {
 public:
  explicit ScopedDeadlockDetector(bool enabled = true)
      : previous_(DeadlockDetectorEnabled()) {
    SetDeadlockDetectorEnabled(enabled);
  }
  ~ScopedDeadlockDetector() { SetDeadlockDetectorEnabled(previous_); }
  ScopedDeadlockDetector(const ScopedDeadlockDetector&) = delete;
  ScopedDeadlockDetector& operator=(const ScopedDeadlockDetector&) = delete;

 private:
  bool previous_;
};

}  // namespace lw
