#include "common/sync.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"

namespace lw {

namespace {

/// Detector ids are minted once per Mutex object and never reused, so a
/// destroyed mutex's graph node can be erased without ABA against a new
/// mutex reusing its address.
std::atomic<std::uint64_t> g_next_id{1};

/// -1 = not yet resolved, else 0/1 (same lazy-env pattern as
/// common::ValidationEnabled()).
std::atomic<int> g_enabled{-1};

bool DefaultDetectorEnabled() {
  if (const char* env = std::getenv("LIGHTWAVE_LOCK_RANK")) {
    return env[0] != '\0' && env[0] != '0';
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

/// One mutex's node in the observed acquired-before graph. `out[b]` holds
/// the diagnostic context captured the first time this mutex was held while
/// acquiring `b` — the OTHER stack's lock set when an inversion later trips.
struct Node {
  const char* name = "";
  int rank = kNoRank;
  std::map<std::uint64_t, std::string> out;
};

/// Process-wide acquired-before graph. Guarded by a raw std::mutex (the one
/// permitted raw primitive outside the wrappers: the detector cannot
/// instrument its own lock). Leaked on purpose so ~Mutex of static-storage
/// mutexes can deregister safely during shutdown.
struct Graph {
  std::mutex mu;
  std::unordered_map<std::uint64_t, Node> nodes;
};

Graph& TheGraph() {
  static Graph* graph = new Graph;
  return *graph;
}

struct HeldLock {
  const Mutex* mu = nullptr;
  std::uint64_t id = 0;
};

/// The calling thread's held-lock stack, in acquisition order. Maintained
/// unconditionally (cheap: one push/pop per lock) so toggling the detector
/// while locks are held never desynchronizes it.
thread_local std::vector<HeldLock> t_held;

/// True while a violation is being reported: the check handler may itself
/// take locks (check.cpp's handler slot), and re-running the detector from
/// inside its own failure path must not recurse or re-trip.
thread_local bool t_reporting = false;

std::string Describe(const Mutex& mu) {
  std::string out = "'";
  out += mu.name()[0] != '\0' ? mu.name() : "<unnamed>";
  out += "'";
  if (mu.rank() != kNoRank) {
    out += " (rank ";
    out += std::to_string(mu.rank());
    out += ")";
  }
  return out;
}

std::string DescribeHeld() {
  if (t_held.empty()) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < t_held.size(); ++i) {
    if (i > 0) out += ", ";
    out += Describe(*t_held[i].mu);
  }
  out += "}";
  return out;
}

/// BFS for a path `from` -> `to` over the acquired-before edges. Returns the
/// node ids along the path (inclusive) or empty when unreachable. Caller
/// holds Graph::mu.
std::vector<std::uint64_t> FindPath(const Graph& graph, std::uint64_t from,
                                    std::uint64_t to) {
  std::unordered_map<std::uint64_t, std::uint64_t> parent;
  std::deque<std::uint64_t> frontier{from};
  parent.emplace(from, from);
  while (!frontier.empty()) {
    const std::uint64_t id = frontier.front();
    frontier.pop_front();
    auto node = graph.nodes.find(id);
    if (node == graph.nodes.end()) continue;
    for (const auto& [next, context] : node->second.out) {
      if (!parent.emplace(next, id).second) continue;
      if (next == to) {
        std::vector<std::uint64_t> path{to};
        for (std::uint64_t cursor = id; cursor != from; cursor = parent.at(cursor)) {
          path.push_back(cursor);
        }
        path.push_back(from);
        return {path.rbegin(), path.rend()};  // built back-to-front
      }
      frontier.push_back(next);
    }
  }
  return {};
}

/// Fires the contract. Under the default handler this aborts with the
/// message; under a test's recording handler it returns, and the detector's
/// own bookkeeping stays consistent so the test can keep going.
void ReportViolation(const std::string& message) {
  t_reporting = true;
  const bool lock_discipline_ok = false;
  LW_CHECK(lock_discipline_ok) << message;
  t_reporting = false;
}

/// Pre-acquisition checks. Returns false when the actual mu_.lock() must be
/// skipped (re-entrant acquisition with a continuing handler: locking again
/// would deadlock the thread on its own non-recursive mutex).
bool OnAcquire(const Mutex& mu, std::uint64_t id) {
  if (t_reporting || !DeadlockDetectorEnabled()) return true;

  for (const HeldLock& held : t_held) {
    if (held.mu == &mu) {
      ReportViolation("re-entrant acquisition of lw::Mutex " + Describe(mu) +
                      ": this thread already holds it; held " + DescribeHeld());
      return false;
    }
  }

  if (mu.rank() != kNoRank) {
    for (const HeldLock& held : t_held) {
      if (held.mu->rank() != kNoRank && held.mu->rank() >= mu.rank()) {
        ReportViolation("lock-rank violation: acquiring " + Describe(mu) +
                        " while holding " + Describe(*held.mu) +
                        "; ranks must be acquired in strictly increasing order"
                        " (lock hierarchy: DESIGN.md section 5.5); held " +
                        DescribeHeld());
        return true;
      }
    }
  }

  if (t_held.empty()) return true;

  std::string violation;
  {
    Graph& graph = TheGraph();
    std::lock_guard<std::mutex> g(graph.mu);
    Node& node = graph.nodes[id];
    node.name = mu.name();
    node.rank = mu.rank();
    for (const HeldLock& held : t_held) {
      auto path = FindPath(graph, id, held.id);
      if (path.empty()) continue;
      // Acquiring `mu` while holding `held` would add the edge held->mu,
      // but the graph already proves mu (transitively) acquired-before
      // held: a cycle. Attach each recorded edge's context — the lock set
      // of the thread that observed the opposite order.
      violation = "lock-order inversion: acquiring " + Describe(mu) +
                  " while holding " + Describe(*held.mu) +
                  " closes a cycle in the acquired-before graph; this thread"
                  " holds " +
                  DescribeHeld();
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto from = graph.nodes.find(path[i]);
        if (from == graph.nodes.end()) continue;
        const auto edge = from->second.out.find(path[i + 1]);
        if (edge == from->second.out.end()) continue;
        violation += "; opposite order was recorded " + edge->second;
      }
      break;
    }
    if (violation.empty()) {
      const std::string context =
          "holding " + DescribeHeld() + " while acquiring " + Describe(mu);
      for (const HeldLock& held : t_held) {
        Node& held_node = graph.nodes[held.id];
        held_node.name = held.mu->name();
        held_node.rank = held.mu->rank();
        held_node.out.try_emplace(id, context);
      }
    }
  }
  if (!violation.empty()) ReportViolation(violation);
  return true;
}

/// Post-release bookkeeping. Returns false when the actual mu_.unlock()
/// must be skipped (the thread does not hold the mutex; unlocking anyway is
/// undefined behaviour on std::mutex).
bool OnRelease(const Mutex& mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == &mu) {
      t_held.erase(std::next(it).base());
      return true;
    }
  }
  if (t_reporting || !DeadlockDetectorEnabled()) return true;
  ReportViolation("unlocking lw::Mutex " + Describe(mu) +
                  " that this thread does not hold; held " + DescribeHeld());
  return false;
}

}  // namespace

Mutex::Mutex(const char* name, int rank)
    : name_(name == nullptr ? "" : name),
      rank_(rank),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {}

Mutex::~Mutex() {
  Graph& graph = TheGraph();
  std::lock_guard<std::mutex> g(graph.mu);
  graph.nodes.erase(id_);
  for (auto& [id, node] : graph.nodes) node.out.erase(id_);
}

void Mutex::Lock() LW_NO_THREAD_SAFETY_ANALYSIS {
  if (OnAcquire(*this, id_)) {
    mu_.lock();
    t_held.push_back(HeldLock{this, id_});
  }
}

void Mutex::Unlock() LW_NO_THREAD_SAFETY_ANALYSIS {
  if (OnRelease(*this)) {
    mu_.unlock();
  }
}

void CondVar::Wait(Mutex& mu) LW_NO_THREAD_SAFETY_ANALYSIS {
  // condition_variable_any releases and reacquires through Mutex::lock/
  // unlock, so the held stack and rank checks stay exact across the wait.
  cv_.wait(mu);
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

bool DeadlockDetectorEnabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = DefaultDetectorEnabled() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetDeadlockDetectorEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace lw
