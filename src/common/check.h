// Always-on contracts for the lightwave library (the correctness-
// verification layer). Unlike assert(), LW_CHECK stays active in every
// build type: the paper's availability claims rest on structural invariants
// (bijective crossbar mappings, undisturbed reconfiguration, monotone sim
// time) that must fail loudly in Release test runs too.
//
//   LW_CHECK(cond) << "context";       fatal contract; streams a message
//   LW_CHECK_OK(status_or_result);     fatal unless .ok(); streams the error
//   LW_DCHECK(cond) << "context";      debug-only (NDEBUG strips it; define
//                                      LIGHTWAVE_FORCE_DCHECKS to keep it)
//   LW_ENSURE(cond)                    recoverable: reports and evaluates to
//                                      the condition, never aborts — for
//                                      rejecting malformed external input
//   LW_UNREACHABLE() << "why";         fatal; marks impossible branches
//
// Every violation is routed through a process-wide pluggable handler. The
// default handler writes the failure to stderr and aborts on fatal kinds
// (kEnsure only logs the first few occurrences and continues). Tests swap
// in a recording handler via ScopedCheckHandler; simulations install a
// counting sink (telemetry::CheckTelemetrySink) so violations become
// metrics instead of crashes.
//
// Structural validators (PalomarSwitch::ValidateInvariants and friends) are
// gated on the runtime validation mode: on by default in debug builds, off
// in optimized builds, overridable with the LIGHTWAVE_VALIDATE environment
// variable or SetValidationEnabled()/ScopedValidation.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace lightwave::common {

/// Where a contract was written, captured by the macros.
struct SourceLocation {
  const char* file = "";
  int line = 0;
  const char* function = "";
};

enum class CheckKind { kCheck, kDcheck, kEnsure, kUnreachable };

const char* ToString(CheckKind kind);

/// One contract violation, as handed to the failure handler.
struct CheckFailure {
  CheckKind kind = CheckKind::kCheck;
  const char* condition = "";
  SourceLocation where;
  /// Message streamed by the call site; empty when none was streamed.
  std::string message;
};

/// `file:line (function): LW_CHECK(cond) failed: message`
std::string FormatCheckFailure(const CheckFailure& failure);

/// Process-wide failure handler. Fatal kinds (everything except kEnsure)
/// abort under the DEFAULT handler; a custom handler that returns lets
/// execution continue, which is what the negative tests and the telemetry
/// sink rely on.
using CheckHandler = std::function<void(const CheckFailure&)>;

/// Replaces the handler (empty restores the default). Returns the previous
/// handler so callers can chain or restore.
CheckHandler SetCheckHandler(CheckHandler handler);

/// RAII handler swap for tests.
class ScopedCheckHandler {
 public:
  explicit ScopedCheckHandler(CheckHandler handler)
      : previous_(SetCheckHandler(std::move(handler))) {}
  ~ScopedCheckHandler() { SetCheckHandler(std::move(previous_)); }
  ScopedCheckHandler(const ScopedCheckHandler&) = delete;
  ScopedCheckHandler& operator=(const ScopedCheckHandler&) = delete;

 private:
  CheckHandler previous_;
};

/// Violation counts since process start, independent of the handler.
struct CheckStats {
  std::uint64_t fatal_failures = 0;   // kCheck, kDcheck, kUnreachable
  std::uint64_t ensure_failures = 0;  // kEnsure
};
CheckStats GetCheckStats();

/// --- validation mode ---------------------------------------------------
/// Gates the structural validators that run at transaction boundaries
/// (crossbar bijectivity, slice accounting, link-state symmetry). Default:
/// on in debug builds, off under NDEBUG; the LIGHTWAVE_VALIDATE environment
/// variable (0/1) overrides the default at first query.
bool ValidationEnabled();
void SetValidationEnabled(bool enabled);

/// RAII validation-mode toggle for tests.
class ScopedValidation {
 public:
  explicit ScopedValidation(bool enabled = true) : previous_(ValidationEnabled()) {
    SetValidationEnabled(enabled);
  }
  ~ScopedValidation() { SetValidationEnabled(previous_); }
  ScopedValidation(const ScopedValidation&) = delete;
  ScopedValidation& operator=(const ScopedValidation&) = delete;

 private:
  bool previous_;
};

#if !defined(NDEBUG) || defined(LIGHTWAVE_FORCE_DCHECKS)
inline constexpr bool kDchecksEnabled = true;
#else
inline constexpr bool kDchecksEnabled = false;
#endif

namespace check_internal {

/// Collects the streamed message; its destructor reports the failure (and,
/// under the default handler, aborts for fatal kinds). Only constructed on
/// the failure path, so passing contracts cost one branch.
class FailureStream {
 public:
  FailureStream(CheckKind kind, const char* condition, SourceLocation where)
      : kind_(kind), condition_(condition), where_(where) {}
  ~FailureStream();
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  template <typename T>
  FailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  CheckKind kind_;
  const char* condition_;
  SourceLocation where_;
  std::ostringstream stream_;
};

/// Swallows the stream in the false branch of the ternary so both branches
/// are void (the glog idiom; & binds looser than <<).
struct Voidify {
  void operator&(FailureStream&) {}
  void operator&(FailureStream&&) {}
};

/// Reports a non-fatal LW_ENSURE violation; always returns false.
bool ReportEnsureFailure(const char* condition, SourceLocation where);

}  // namespace check_internal
}  // namespace lightwave::common

#define LW_CHECK_SOURCE_LOCATION \
  ::lightwave::common::SourceLocation { __FILE__, __LINE__, __func__ }

#define LW_CHECK_IMPL(kind, cond)                          \
  (cond) ? (void)0                                         \
         : ::lightwave::common::check_internal::Voidify()& \
               ::lightwave::common::check_internal::FailureStream(kind, #cond, \
                                                                  LW_CHECK_SOURCE_LOCATION)

/// Fatal contract, active in all build types.
#define LW_CHECK(cond) LW_CHECK_IMPL(::lightwave::common::CheckKind::kCheck, cond)

/// Fatal contract on a common::Status / common::Result: passes when .ok(),
/// otherwise streams the error code and message before the handler runs.
#define LW_CHECK_OK(expr)                                                                \
  switch (0)                                                                             \
  case 0:                                                                                \
  default:                                                                               \
    if (const auto& lw_check_ok_ = (expr); lw_check_ok_.ok()) {                          \
    } else                                                                               \
      ::lightwave::common::check_internal::FailureStream(                                \
          ::lightwave::common::CheckKind::kCheck, #expr " is OK",                        \
          LW_CHECK_SOURCE_LOCATION)                                                      \
          << "[" << ::lightwave::common::ToString(lw_check_ok_.error().code) << "] "     \
          << lw_check_ok_.error().message << " "

/// Debug-only fatal contract. Compiled out under NDEBUG (the condition is
/// not evaluated) unless LIGHTWAVE_FORCE_DCHECKS is defined.
#if !defined(NDEBUG) || defined(LIGHTWAVE_FORCE_DCHECKS)
#define LW_DCHECK(cond) LW_CHECK_IMPL(::lightwave::common::CheckKind::kDcheck, cond)
#else
#define LW_DCHECK(cond) LW_CHECK_IMPL(::lightwave::common::CheckKind::kDcheck, true || (cond))
#endif

/// Recoverable contract for rejecting malformed external input (wire
/// frames, operator commands): reports through the handler, never aborts,
/// and evaluates to the condition so callers can bail out:
///   if (!LW_ENSURE(crc_matches)) return std::nullopt;
#define LW_ENSURE(cond)                                            \
  (static_cast<bool>(cond)                                         \
       ? true                                                      \
       : ::lightwave::common::check_internal::ReportEnsureFailure( \
             #cond, LW_CHECK_SOURCE_LOCATION))

/// Fatal marker for impossible branches.
#define LW_UNREACHABLE()                                      \
  ::lightwave::common::check_internal::Voidify()&             \
      ::lightwave::common::check_internal::FailureStream(     \
          ::lightwave::common::CheckKind::kUnreachable,       \
          "reached unreachable code", LW_CHECK_SOURCE_LOCATION)
