// Strong types for the decibel-domain quantities used throughout the optical
// stack. Keeping gains (dB) and absolute powers (dBm) as distinct types makes
// the link-budget arithmetic self-checking: only physically meaningful
// combinations compile (power + gain -> power, power - power -> gain, ...).
#pragma once

#include <cmath>
#include <compare>

namespace lightwave::common {

/// A relative power ratio expressed in decibels. Used for gains, losses,
/// penalties, and margins. Negative values are losses when the quantity is
/// framed as a gain and vice versa.
class Decibel {
 public:
  constexpr Decibel() = default;
  constexpr explicit Decibel(double db) : db_(db) {}

  /// Builds a dB value from a linear power ratio (> 0).
  static Decibel FromLinear(double ratio) { return Decibel(10.0 * std::log10(ratio)); }

  constexpr double value() const { return db_; }
  double linear() const { return std::pow(10.0, db_ / 10.0); }

  constexpr Decibel operator+(Decibel other) const { return Decibel(db_ + other.db_); }
  constexpr Decibel operator-(Decibel other) const { return Decibel(db_ - other.db_); }
  constexpr Decibel operator-() const { return Decibel(-db_); }
  constexpr Decibel operator*(double k) const { return Decibel(db_ * k); }
  constexpr Decibel& operator+=(Decibel other) {
    db_ += other.db_;
    return *this;
  }
  constexpr Decibel& operator-=(Decibel other) {
    db_ -= other.db_;
    return *this;
  }
  constexpr auto operator<=>(const Decibel&) const = default;

 private:
  double db_ = 0.0;
};

/// An absolute optical power referenced to 1 mW, expressed in dBm.
class DbmPower {
 public:
  constexpr DbmPower() = default;
  constexpr explicit DbmPower(double dbm) : dbm_(dbm) {}

  static DbmPower FromMilliwatts(double mw) { return DbmPower(10.0 * std::log10(mw)); }

  constexpr double value() const { return dbm_; }
  double milliwatts() const { return std::pow(10.0, dbm_ / 10.0); }

  /// Applying a gain (or a negative-valued loss) to a power yields a power.
  constexpr DbmPower operator+(Decibel gain) const { return DbmPower(dbm_ + gain.value()); }
  constexpr DbmPower operator-(Decibel loss) const { return DbmPower(dbm_ - loss.value()); }
  /// The ratio between two powers is a relative quantity.
  constexpr Decibel operator-(DbmPower other) const { return Decibel(dbm_ - other.dbm_); }
  constexpr auto operator<=>(const DbmPower&) const = default;

 private:
  double dbm_ = 0.0;
};

namespace literals {
constexpr Decibel operator""_dB(long double v) { return Decibel(static_cast<double>(v)); }
constexpr Decibel operator""_dB(unsigned long long v) { return Decibel(static_cast<double>(v)); }
constexpr DbmPower operator""_dBm(long double v) { return DbmPower(static_cast<double>(v)); }
constexpr DbmPower operator""_dBm(unsigned long long v) {
  return DbmPower(static_cast<double>(v));
}
}  // namespace literals

/// Wavelength in nanometres; plain value type with arithmetic helpers.
struct Nanometers {
  double nm = 0.0;
  constexpr auto operator<=>(const Nanometers&) const = default;
};

/// Data rate in gigabits per second.
struct GbitPerSec {
  double gbps = 0.0;
  constexpr auto operator<=>(const GbitPerSec&) const = default;
};

/// Sums a set of interferer powers expressed in dB relative to carrier.
/// Returns the aggregate relative power, again in dB (all terms add in the
/// linear domain).
inline Decibel SumInterferers(const Decibel* terms, int count) {
  double lin = 0.0;
  for (int i = 0; i < count; ++i) lin += terms[i].linear();
  return lin > 0.0 ? Decibel::FromLinear(lin) : Decibel(-400.0);
}

}  // namespace lightwave::common
