// Numeric helpers shared by the PHY and availability models: the Gaussian
// tail function and its inverse (receiver BER math), linear ranges, and
// combinatorics for availability composition.
#pragma once

#include <vector>

namespace lightwave::common {

/// Gaussian tail probability Q(x) = P[N(0,1) > x].
double QFunction(double x);

/// Inverse of QFunction on (0, 1); Newton refinement over an initial
/// rational approximation, accurate to ~1e-12.
double QInverse(double p);

/// `n` evenly spaced points from lo to hi inclusive (n >= 2).
std::vector<double> Linspace(double lo, double hi, int n);

/// Binomial coefficient as a double (exact for the small n used here).
double BinomialCoefficient(int n, int k);

/// Probability that at least `k` of `n` independent components, each up with
/// probability `p`, are up. Used for spared-component availability.
double AtLeastKofN(int n, int k, double p);

}  // namespace lightwave::common
