#include "common/math.h"

#include <cmath>

#include "common/check.h"

namespace lightwave::common {

double QFunction(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double QInverse(double p) {
  LW_CHECK(p > 0.0 && p < 1.0) << "QInverse needs a probability in (0,1), got " << p;
  // Acklam's rational approximation for the normal quantile, then Newton.
  // Q^{-1}(p) = -Phi^{-1}(p) where Phi is the standard normal CDF? No:
  // Q(x) = 1 - Phi(x), so x = Phi^{-1}(1 - p).
  const double target = 1.0 - p;
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x = 0.0;
  if (target < p_low) {
    const double q = std::sqrt(-2.0 * std::log(target));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (target <= 1.0 - p_low) {
    const double q = target - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - target));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Two Newton steps against Q(x) = p for full double precision.
  for (int i = 0; i < 2; ++i) {
    const double err = QFunction(x) - p;
    const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
    if (pdf <= 0.0) break;
    x += err / pdf;  // dQ/dx = -pdf, so subtracting err/(-pdf) adds err/pdf.
  }
  return x;
}

std::vector<double> Linspace(double lo, double hi, int n) {
  LW_CHECK(n >= 2) << "Linspace needs at least 2 points, got " << n;
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

double BinomialCoefficient(int n, int k) {
  LW_CHECK(n >= 0 && k >= 0) << "n=" << n << " k=" << k;
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

double AtLeastKofN(int n, int k, double p) {
  LW_CHECK(n >= 0 && k >= 0 && p >= 0.0 && p <= 1.0)
      << "n=" << n << " k=" << k << " p=" << p;
  double total = 0.0;
  for (int i = k; i <= n; ++i) {
    total += BinomialCoefficient(n, i) * std::pow(p, i) * std::pow(1.0 - p, n - i);
  }
  return std::min(1.0, total);
}

}  // namespace lightwave::common
