#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace lightwave::common {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Stream(std::uint64_t seed, std::uint64_t stream) {
  // Two splitmix rounds over the (seed, stream) pair decorrelate adjacent
  // streams; the resulting 64-bit value seeds the regular constructor.
  std::uint64_t x = seed;
  std::uint64_t mixed = SplitMix64(x);
  x = mixed ^ (stream + 0x9E3779B97F4A7C15ull);
  mixed = SplitMix64(x);
  return Rng(mixed);
}

}  // namespace lightwave::common
