// Deterministic random number generation. Every stochastic component in the
// library takes an explicit seed so that benches and tests are reproducible
// bit-for-bit; nothing reads the wall clock or a global generator.
#pragma once

#include <array>
#include <cstdint>

namespace lightwave::common {

/// xoshiro256++ seeded through splitmix64. Fast, high-quality, and small
/// enough to embed one generator per simulated device.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double Gaussian();

  /// Normal with given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with given rate (events per unit time). Requires rate > 0.
  double Exponential(double rate);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Derives an independent child generator; used to give each simulated
  /// device its own stream without correlation.
  Rng Fork();

  /// Counter-based stream derivation for the parallel runtime: the state
  /// depends only on (seed, stream), so chunk `c` of a parallel region can
  /// build `Stream(seed, c)` with no shared RNG state between chunks — the
  /// results are identical at any thread count. Stream 0 is NOT the same
  /// generator as Rng(seed); a parallel driver either uses streams
  /// everywhere or not at all.
  static Rng Stream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace lightwave::common
