#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace lightwave::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::Factor(double v, int precision) { return Num(v, precision) + "x"; }

std::string Table::Percent(double fraction, int precision) {
  return Num(fraction * 100.0, precision) + "%";
}

std::string Table::Sci(double v, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

}  // namespace lightwave::common
