#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace lightwave::common {

namespace {

/// Rank kCheckHandler (the highest): LW_CHECK can fire while ANY other lock
/// is held, so the handler slot must be acquirable under everything.
lw::Mutex g_handler_mu("check.handler", lw::rank::kCheckHandler);
CheckHandler g_handler LW_GUARDED_BY(g_handler_mu);  // empty = default behaviour

std::atomic<std::uint64_t> g_fatal_failures{0};
std::atomic<std::uint64_t> g_ensure_failures{0};

/// Validation mode: -1 = not yet resolved, else 0/1.
std::atomic<int> g_validation{-1};

bool DefaultValidationEnabled() {
  if (const char* env = std::getenv("LIGHTWAVE_VALIDATE")) {
    return env[0] != '\0' && env[0] != '0';
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

/// Default policy: log every fatal failure and abort; for kEnsure (expected
/// malformed input) log only the first few so a fuzz corpus cannot flood
/// stderr, and keep running.
void DefaultHandler(const CheckFailure& failure) {
  if (failure.kind == CheckKind::kEnsure) {
    static std::atomic<int> logged{0};
    constexpr int kMaxEnsureLogs = 8;
    const int n = logged.fetch_add(1, std::memory_order_relaxed);
    if (n < kMaxEnsureLogs) {
      std::fprintf(stderr, "%s\n", FormatCheckFailure(failure).c_str());
      if (n == kMaxEnsureLogs - 1) {
        std::fprintf(stderr, "lightwave: further LW_ENSURE failures suppressed "
                             "(see GetCheckStats())\n");
      }
    }
    return;
  }
  std::fprintf(stderr, "%s\n", FormatCheckFailure(failure).c_str());
  std::abort();
}

void Report(const CheckFailure& failure) {
  if (failure.kind == CheckKind::kEnsure) {
    g_ensure_failures.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_fatal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  CheckHandler handler;
  {
    lw::MutexLock lock(g_handler_mu);
    handler = g_handler;
  }
  if (handler) {
    handler(failure);
  } else {
    DefaultHandler(failure);
  }
}

}  // namespace

const char* ToString(CheckKind kind) {
  switch (kind) {
    case CheckKind::kCheck: return "check";
    case CheckKind::kDcheck: return "dcheck";
    case CheckKind::kEnsure: return "ensure";
    case CheckKind::kUnreachable: return "unreachable";
  }
  return "?";
}

std::string FormatCheckFailure(const CheckFailure& failure) {
  std::ostringstream out;
  out << failure.where.file << ":" << failure.where.line << " ("
      << failure.where.function << "): LW_" << ToString(failure.kind)
      << " failed: " << failure.condition;
  if (!failure.message.empty()) out << ": " << failure.message;
  return out.str();
}

CheckHandler SetCheckHandler(CheckHandler handler) {
  lw::MutexLock lock(g_handler_mu);
  std::swap(g_handler, handler);
  return handler;
}

CheckStats GetCheckStats() {
  return CheckStats{g_fatal_failures.load(std::memory_order_relaxed),
                    g_ensure_failures.load(std::memory_order_relaxed)};
}

bool ValidationEnabled() {
  int state = g_validation.load(std::memory_order_relaxed);
  if (state < 0) {
    state = DefaultValidationEnabled() ? 1 : 0;
    g_validation.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetValidationEnabled(bool enabled) {
  g_validation.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace check_internal {

FailureStream::~FailureStream() {
  Report(CheckFailure{kind_, condition_, where_, stream_.str()});
}

bool ReportEnsureFailure(const char* condition, SourceLocation where) {
  Report(CheckFailure{CheckKind::kEnsure, condition, where, {}});
  return false;
}

}  // namespace check_internal
}  // namespace lightwave::common
