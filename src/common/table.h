// ASCII table rendering for the bench harness, so each bench prints rows in
// the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace lightwave::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Formats a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 2);
  /// Formats as "1.24x" style relative factor.
  static std::string Factor(double v, int precision = 2);
  /// Formats as percentage, e.g. 97.5%.
  static std::string Percent(double fraction, int precision = 1);
  /// Scientific notation, e.g. 2.0e-04.
  static std::string Sci(double v, int precision = 1);

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lightwave::common
