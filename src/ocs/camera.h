// Camera monitor path (§3.2.2, Fig. 4/6): each MEMS array is illuminated by
// an 850 nm monitor beam; dichroic splitters image the mirror array onto a
// camera, and the control loop extracts each mirror's pointing error from
// the spot position in the image. "By implementing mirror controls based on
// image processing, the control scheme is significantly simplified compared
// to ... individual per mirror monitoring and/or photodetector hardware."
//
// This module is the image-processing half of that loop: synthetic spot
// rendering (Gaussian PSF on a pixel grid with shot noise and background),
// centroid extraction with background subtraction and thresholding, and the
// pixel->angle calibration that turns a centroid offset into a mirror
// correction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"

namespace lightwave::ocs {

/// A small monochrome region-of-interest around one mirror's spot.
class CameraImage {
 public:
  CameraImage(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  double at(int x, int y) const;
  void set(int x, int y, double value);
  double Sum() const;

 private:
  int width_;
  int height_;
  std::vector<double> pixels_;
};

struct CameraSpec {
  int roi_pixels = 16;          // square region of interest per mirror
  double pixel_pitch_um = 5.0;  // physical pixel size
  /// Optical magnification from mirror tilt to spot displacement on the
  /// sensor: micrometres of spot motion per radian of mirror tilt.
  double um_per_radian = 20'000.0;
  double psf_sigma_pixels = 1.4;  // spot size (diffraction + optics)
  double peak_signal = 4000.0;    // counts at spot centre
  double background = 40.0;       // stray light counts per pixel
  double read_noise = 6.0;        // counts rms per pixel
};

/// Renders the monitor spot for a mirror whose pointing error is
/// (error_x, error_y) radians; the spot lands offset from the ROI centre.
CameraImage RenderSpot(const CameraSpec& spec, double error_x_rad, double error_y_rad,
                       common::Rng& rng);

struct Centroid {
  double x_pixels = 0.0;  // offset from ROI centre
  double y_pixels = 0.0;
  double signal = 0.0;  // background-subtracted integrated counts
};

/// Background-subtracted, thresholded centroid. nullopt when the spot is
/// too dim to localize (mirror pointing far outside the ROI, dead laser).
std::optional<Centroid> ExtractCentroid(const CameraSpec& spec, const CameraImage& image);

/// Converts a centroid offset to the mirror pointing error it implies.
void CentroidToAngles(const CameraSpec& spec, const Centroid& centroid, double* error_x_rad,
                      double* error_y_rad);

/// One full measurement: render + extract + convert. Returns false when the
/// spot was not found.
bool MeasurePointingError(const CameraSpec& spec, double true_x_rad, double true_y_rad,
                          common::Rng& rng, double* measured_x_rad,
                          double* measured_y_rad);

}  // namespace lightwave::ocs
