// Optical-switching technology comparison (Appendix C, Table C.1) encoded as
// data plus a requirements-matching helper: given use-case requirements it
// scores each technology, reproducing the paper's conclusion that free-space
// MEMS is the best match for the DCN and ML use cases (§3.2.1).
#pragma once

#include <string>
#include <vector>

namespace lightwave::ocs {

enum class RelativeCost { kLow, kMedium, kHigh, kTbd };

const char* ToString(RelativeCost cost);

struct OcsTechnology {
  std::string name;
  RelativeCost cost = RelativeCost::kMedium;
  int port_count = 0;           // demonstrated radix (NxN)
  double switching_time_s = 0;  // per reconfiguration
  double insertion_loss_db = 0;
  double driving_voltage_v = 0;  // 0 = not applicable
  bool latching = false;         // holds state through power failure
};

/// The Table C.1 rows.
std::vector<OcsTechnology> OcsTechnologies();

struct UseCaseRequirements {
  int min_ports = 128;
  double max_switching_time_s = 1.0;
  double max_insertion_loss_db = 3.0;
};

/// Scores technologies against requirements; higher is better, negative
/// means a hard requirement is violated.
struct TechnologyScore {
  OcsTechnology technology;
  double score = 0.0;
  std::string rationale;
};

std::vector<TechnologyScore> RankTechnologies(const UseCaseRequirements& req,
                                              const std::vector<OcsTechnology>& techs);

}  // namespace lightwave::ocs
