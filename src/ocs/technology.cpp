#include "ocs/technology.h"

#include <algorithm>
#include <sstream>

namespace lightwave::ocs {

const char* ToString(RelativeCost cost) {
  switch (cost) {
    case RelativeCost::kLow: return "Low";
    case RelativeCost::kMedium: return "Medium";
    case RelativeCost::kHigh: return "High";
    case RelativeCost::kTbd: return "TBD";
  }
  return "?";
}

std::vector<OcsTechnology> OcsTechnologies() {
  return {
      OcsTechnology{.name = "MEMS", .cost = RelativeCost::kMedium, .port_count = 320,
                    .switching_time_s = 10e-3, .insertion_loss_db = 3.0,
                    .driving_voltage_v = 100.0, .latching = false},
      OcsTechnology{.name = "Robotic", .cost = RelativeCost::kMedium, .port_count = 1008,
                    .switching_time_s = 60.0, .insertion_loss_db = 1.0,
                    .driving_voltage_v = 0.0, .latching = true},
      OcsTechnology{.name = "Piezo", .cost = RelativeCost::kHigh, .port_count = 576,
                    .switching_time_s = 10e-3, .insertion_loss_db = 2.5,
                    .driving_voltage_v = 10.0, .latching = false},
      OcsTechnology{.name = "GuidedWave", .cost = RelativeCost::kLow, .port_count = 16,
                    .switching_time_s = 10e-9, .insertion_loss_db = 6.0,
                    .driving_voltage_v = 1.0, .latching = false},
      OcsTechnology{.name = "Wavelength", .cost = RelativeCost::kTbd, .port_count = 100,
                    .switching_time_s = 10e-9, .insertion_loss_db = 6.0,
                    .driving_voltage_v = 0.0, .latching = true},
  };
}

std::vector<TechnologyScore> RankTechnologies(const UseCaseRequirements& req,
                                              const std::vector<OcsTechnology>& techs) {
  std::vector<TechnologyScore> scores;
  scores.reserve(techs.size());
  for (const auto& tech : techs) {
    TechnologyScore ts{.technology = tech, .score = 0.0, .rationale = ""};
    std::ostringstream why;
    if (tech.port_count < req.min_ports) {
      ts.score -= 100.0;
      why << "radix " << tech.port_count << " < required " << req.min_ports << "; ";
    } else {
      ts.score += 10.0 + 5.0 * (tech.port_count >= 2 * req.min_ports ? 1.0 : 0.0);
    }
    if (tech.switching_time_s > req.max_switching_time_s) {
      ts.score -= 100.0;
      why << "switching too slow; ";
    } else {
      ts.score += 10.0;
    }
    if (tech.insertion_loss_db > req.max_insertion_loss_db) {
      ts.score -= 100.0;
      why << "insertion loss " << tech.insertion_loss_db << " dB over budget; ";
    } else {
      ts.score += 10.0 + (req.max_insertion_loss_db - tech.insertion_loss_db);
    }
    switch (tech.cost) {
      case RelativeCost::kLow: ts.score += 6.0; break;
      case RelativeCost::kMedium: ts.score += 4.0; break;
      case RelativeCost::kHigh: ts.score += 1.0; break;
      case RelativeCost::kTbd: ts.score += 0.0; break;
    }
    if (why.str().empty()) why << "meets all hard requirements";
    ts.rationale = why.str();
    scores.push_back(std::move(ts));
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const TechnologyScore& a, const TechnologyScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

}  // namespace lightwave::ocs
