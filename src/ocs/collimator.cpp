#include "ocs/collimator.h"

#include <algorithm>

namespace lightwave::ocs {

using common::Decibel;

CollimatorArray::CollimatorArray(common::Rng& rng, int ports) {
  ports_.reserve(static_cast<std::size_t>(ports));
  for (int i = 0; i < ports; ++i) {
    CollimatorPort p;
    // Coupling loss: tight normal distribution around 0.4 dB.
    p.coupling_loss = Decibel{std::max(0.1, rng.Gaussian(0.4, 0.08))};
    // Return loss: mean -46 dB with a few dB of spread; spec < -38 dB
    // (Fig. 10b). Clamp to the physical floor of the AR coating.
    p.return_loss = Decibel{std::min(-38.5, rng.Gaussian(-46.0, 2.0))};
    // Pigtail: most ports ~0.15 dB; ~8% carry a poor splice/connector that
    // adds up to ~0.8 dB — the tail of the insertion-loss histogram.
    double pigtail = std::max(0.02, rng.Gaussian(0.15, 0.05));
    if (rng.Bernoulli(0.08)) pigtail += rng.Uniform(0.2, 0.8);
    p.pigtail_loss = Decibel{pigtail};
    ports_.push_back(p);
  }
}

}  // namespace lightwave::ocs
