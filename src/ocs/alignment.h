// Camera-based closed-loop mirror alignment (§3.2.2, Fig. 4). An 850 nm
// monitor beam illuminates each MEMS array; dichroic splitters image the
// mirrors onto a camera, and image processing feeds back corrections that
// drive each mirror's pointing error to the sub-microradian regime. This
// replaces per-mirror photodetector monitoring and is what made the switch
// manufacturable at low cost.
#pragma once

#include "common/rng.h"
#include "ocs/camera.h"
#include "ocs/mems.h"

namespace lightwave::ocs {

struct AlignmentConfig {
  /// Fraction of the measured error removed per control iteration (camera
  /// measurement + HV update).
  double gain = 0.65;  // units: dimensionless loop fraction
  /// True: measure through the real image pipeline (render the 850 nm
  /// monitor spot, extract the centroid — §3.2.2). False (default): an
  /// abstract Gaussian measurement with `measurement_noise_std` whose noise
  /// level is calibrated to the camera pipeline — the fast path for
  /// pod-scale simulations (a full pod aligns ~6k mirror pairs).
  bool use_camera = false;
  CameraSpec camera{.roi_pixels = 32};
  /// Abstract measurement noise (radians, 1 sigma) for the fast path; also
  /// the accuracy of the wide-field acquisition mode the loop falls back to
  /// when the spot is outside the tracking ROI.
  double measurement_noise_std = 2.0e-5;
  double acquisition_noise_std = 2.0e-4;
  /// Iterations stop when the estimated error falls below this bound.
  double convergence_threshold = 5.0e-5;
  int max_iterations = 40;
  /// Wall-clock per iteration (camera exposure + image processing + HV
  /// settle); dominates the millisecond-class switching time.
  double iteration_time_ms = 0.4;
};

struct AlignmentResult {
  int iterations = 0;
  bool converged = false;
  double residual_error = 0.0;  // radians
  double elapsed_ms = 0.0;
};

/// Runs the closed loop for one logical mirror of one array.
class AlignmentController {
 public:
  AlignmentController() : AlignmentController(AlignmentConfig{}) {}
  explicit AlignmentController(AlignmentConfig config) : config_(config) {}

  const AlignmentConfig& config() const { return config_; }

  AlignmentResult Align(common::Rng& rng, MemsArray& array, int logical) const;

 private:
  AlignmentConfig config_;
};

/// Maps residual pointing error to excess coupling loss through the core's
/// Gaussian-beam overlap: loss_dB = k * (error/error_scale)^2.
common::Decibel MisalignmentLoss(double pointing_error_rad);

}  // namespace lightwave::ocs
