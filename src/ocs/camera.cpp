#include "ocs/camera.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lightwave::ocs {

CameraImage::CameraImage(int width, int height)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * height, 0.0) {
  assert(width > 0 && height > 0);
}

double CameraImage::at(int x, int y) const {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void CameraImage::set(int x, int y, double value) {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  pixels_[static_cast<std::size_t>(y) * width_ + x] = value;
}

double CameraImage::Sum() const {
  double sum = 0.0;
  for (double p : pixels_) sum += p;
  return sum;
}

CameraImage RenderSpot(const CameraSpec& spec, double error_x_rad, double error_y_rad,
                       common::Rng& rng) {
  CameraImage image(spec.roi_pixels, spec.roi_pixels);
  const double centre = (spec.roi_pixels - 1) / 2.0;
  const double spot_x =
      centre + error_x_rad * spec.um_per_radian / spec.pixel_pitch_um;
  const double spot_y =
      centre + error_y_rad * spec.um_per_radian / spec.pixel_pitch_um;
  const double two_sigma_sq = 2.0 * spec.psf_sigma_pixels * spec.psf_sigma_pixels;
  for (int y = 0; y < spec.roi_pixels; ++y) {
    for (int x = 0; x < spec.roi_pixels; ++x) {
      const double dx = x - spot_x;
      const double dy = y - spot_y;
      const double signal = spec.peak_signal * std::exp(-(dx * dx + dy * dy) / two_sigma_sq);
      // Shot noise ~ sqrt(counts); plus read noise and background.
      const double counts = signal + spec.background;
      const double noisy =
          counts + rng.Gaussian(0.0, std::sqrt(std::max(0.0, counts)) + spec.read_noise);
      image.set(x, y, std::max(0.0, noisy));
    }
  }
  return image;
}

std::optional<Centroid> ExtractCentroid(const CameraSpec& spec, const CameraImage& image) {
  // Background estimate: median of the border pixels (the spot lives in the
  // interior when the mirror is anywhere near aligned).
  std::vector<double> border;
  for (int x = 0; x < image.width(); ++x) {
    border.push_back(image.at(x, 0));
    border.push_back(image.at(x, image.height() - 1));
  }
  for (int y = 1; y < image.height() - 1; ++y) {
    border.push_back(image.at(0, y));
    border.push_back(image.at(image.width() - 1, y));
  }
  std::nth_element(border.begin(), border.begin() + static_cast<long>(border.size() / 2),
                   border.end());
  const double background = border[border.size() / 2];

  // Threshold at 4 sigma of the per-pixel noise (shot noise on the
  // background plus read noise); centroid over survivors.
  const double pixel_sigma = std::sqrt(std::max(0.0, background)) + spec.read_noise;
  const double threshold = background + 4.0 * pixel_sigma;
  double sum = 0.0, sum_x = 0.0, sum_y = 0.0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const double v = image.at(x, y) - background;
      if (image.at(x, y) < threshold) continue;
      sum += v;
      sum_x += v * x;
      sum_y += v * y;
    }
  }
  // Require a detectable integrated signal (a few percent of the nominal
  // spot energy) before trusting the centroid.
  const double min_signal =
      std::max(0.02 * spec.peak_signal * 2.0 * M_PI * spec.psf_sigma_pixels *
                   spec.psf_sigma_pixels,
               20.0 * pixel_sigma);
  if (sum < min_signal) return std::nullopt;
  const double centre = (image.width() - 1) / 2.0;
  return Centroid{
      .x_pixels = sum_x / sum - centre,
      .y_pixels = sum_y / sum - centre,
      .signal = sum,
  };
}

void CentroidToAngles(const CameraSpec& spec, const Centroid& centroid, double* error_x_rad,
                      double* error_y_rad) {
  const double um_per_pixel = spec.pixel_pitch_um;
  *error_x_rad = centroid.x_pixels * um_per_pixel / spec.um_per_radian;
  *error_y_rad = centroid.y_pixels * um_per_pixel / spec.um_per_radian;
}

bool MeasurePointingError(const CameraSpec& spec, double true_x_rad, double true_y_rad,
                          common::Rng& rng, double* measured_x_rad,
                          double* measured_y_rad) {
  const CameraImage image = RenderSpot(spec, true_x_rad, true_y_rad, rng);
  const auto centroid = ExtractCentroid(spec, image);
  if (!centroid.has_value()) return false;
  CentroidToAngles(spec, *centroid, measured_x_rad, measured_y_rad);
  return true;
}

}  // namespace lightwave::ocs
