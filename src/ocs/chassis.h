// Palomar chassis model (Fig. 7): front half carries fiber management and
// the optical core; the back chassis carries the CPU, FPGA, high-voltage
// driver boards, and redundant, hot-swappable power supplies and fan
// modules. The HV drivers were the largest reliability challenge — they are
// field replaceable, but swapping one drops the mirror state it drives.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace lightwave::ocs {

enum class FruKind {
  kCpu,
  kFpga,
  kHvDriverBoard,
  kPowerSupply,
  kFanModule,
  kOpticalCore,
};

const char* ToString(FruKind kind);

struct FruSpec {
  FruKind kind;
  int count = 1;          // installed units
  int required = 1;       // minimum functional units for chassis operation
  double mtbf_hours = 0;  // per-unit
  double mttr_hours = 0;  // field replacement time
  bool hot_swappable = false;
  /// Swapping drops volatile mirror state driven by this unit.
  bool swap_disturbs_mirrors = false;
};

/// The production FRU complement.
std::vector<FruSpec> PalomarFruComplement();

struct FruInstance {
  FruSpec spec;
  std::vector<bool> unit_up;  // per installed unit

  int UpCount() const;
  bool Operational() const { return UpCount() >= spec.required; }
};

/// Tracks chassis hardware state and answers availability queries.
class Chassis {
 public:
  explicit Chassis(std::vector<FruSpec> complement = PalomarFruComplement());

  /// Steady-state availability from per-FRU MTBF/MTTR with k-of-n sparing:
  /// the product over FRUs of P[at least `required` of `count` up].
  double SteadyStateAvailability() const;

  /// Degrades one unit; returns true when the chassis remains operational.
  bool FailUnit(FruKind kind, int unit);
  /// Repairs (or hot-swaps) a unit. Returns true when the swap disturbed
  /// mirror state (caller must re-establish the affected connections).
  bool RepairUnit(FruKind kind, int unit);

  bool Operational() const;
  const std::vector<FruInstance>& frus() const { return frus_; }

  /// Total electrical power draw; the paper's headline figure is 108 W for
  /// the whole system.
  double PowerDrawWatts() const;

 private:
  FruInstance* Find(FruKind kind);
  const FruInstance* Find(FruKind kind) const;

  std::vector<FruInstance> frus_;
};

}  // namespace lightwave::ocs
