// MEMS mirror array model (§3.2.2, Fig. 5). Each Palomar die carries 176
// individually controllable micro-mirrors of which the best 136 are selected
// at manufacturing; the remainder are qualified spares. Mirrors are actuated
// by high-voltage drivers and tilt on two axes; pointing error maps to
// coupling loss in the optical core.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lightwave::ocs {

inline constexpr int kFabricatedMirrors = 176;
inline constexpr int kUsedMirrors = 136;

struct MirrorState {
  /// Commanded tilt (radians, two axes).
  double target_x = 0.0;
  double target_y = 0.0;
  /// Actual tilt after actuation; differs from target by pointing error
  /// until the closed-loop alignment converges.
  double actual_x = 0.0;
  double actual_y = 0.0;
  bool functional = true;
};

/// One packaged MEMS die.
class MemsArray {
 public:
  /// Fabricates a die: each mirror passes qualification with
  /// `mirror_yield` probability; dies with fewer than kUsedMirrors good
  /// mirrors are rejected (retry with fresh randomness).
  MemsArray(common::Rng& rng, double mirror_yield = 0.93);

  /// Logical mirror index (0..kUsedMirrors-1) -> physical mirror. The best
  /// qualifying mirrors are mapped at manufacturing; spares substitute when
  /// a mapped mirror fails in the field.
  int PhysicalMirror(int logical) const;

  MirrorState& mirror(int physical) { return mirrors_[static_cast<std::size_t>(physical)]; }
  const MirrorState& mirror(int physical) const {
    return mirrors_[static_cast<std::size_t>(physical)];
  }

  /// Commands a logical mirror to a tilt; the immediate actual position has
  /// an open-loop pointing error drawn from `open_loop_error_std`.
  void Actuate(common::Rng& rng, int logical, double x, double y);

  /// Marks a physical mirror failed and remaps its logical slot onto a
  /// qualified spare. Returns false when no spares remain.
  bool FailMirror(common::Rng& rng, int physical);

  int SparesRemaining() const;
  int FunctionalCount() const;

  /// Residual pointing error magnitude of a logical mirror (radians).
  double PointingError(int logical) const;

  /// Open-loop actuation error (std dev, radians). Closed-loop alignment
  /// drives the residual well below this.
  static constexpr double kOpenLoopErrorStd = 2.0e-3;

 private:
  std::vector<MirrorState> mirrors_;
  std::vector<int> logical_to_physical_;
  std::vector<int> spare_pool_;  // qualified but unmapped physical mirrors
};

}  // namespace lightwave::ocs
