// The Palomar OCS (§3.2): a non-blocking 136x136 optical crossbar with
// bijective any-to-any north->south connectivity. 128 duplex ports serve the
// fabric; 8 are spares for link testing and repairs. Reconfiguration is
// transactional: connections shared between the old and new configuration
// are left untouched ("undisturbed"), which is what lets the scheduler place
// new slices without interfering with running jobs (§4.2.4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/units.h"
#include "ocs/chassis.h"
#include "ocs/optical_core.h"

namespace lightwave::telemetry {
class Counter;
class HistogramMetric;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ocs {

inline constexpr int kPalomarPortCount = 136;
inline constexpr int kPalomarUsablePorts = 128;
inline constexpr int kPalomarSparePorts = 8;

struct Connection {
  int north = -1;
  int south = -1;
  common::Decibel insertion_loss{0.0};
  common::Decibel return_loss{-46.0};
  auto operator<=>(const Connection&) const = default;
};

struct ReconfigureReport {
  std::vector<Connection> established;
  std::vector<Connection> removed;
  /// Connections carried over untouched; traffic on them never blips.
  std::vector<Connection> undisturbed;
  /// Wall-clock for the transaction. Mirrors actuate in parallel, so this is
  /// the max (not sum) of per-path alignment times plus command overhead.
  double duration_ms = 0.0;
};

struct SwitchTelemetry {
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t rejected_commands = 0;
  double cumulative_switch_ms = 0.0;
};

class PalomarSwitch {
 public:
  explicit PalomarSwitch(std::uint64_t seed, std::string name = "palomar");

  const std::string& name() const { return name_; }
  int port_count() const { return kPalomarPortCount; }

  /// Establishes north<->south. Fails when either side is already connected
  /// (the crossbar is bijective), out of range, or its mirror chain is dead.
  common::Result<Connection> Connect(int north, int south);

  /// Tears down the connection on `north`. Fails when none exists.
  common::Status Disconnect(int north);

  /// Atomically moves to `target` (a set of north->south pairs). Preserves
  /// intersecting connections undisturbed. Fails (with no state change) when
  /// the target is not bijective or references dead/out-of-range ports.
  common::Result<ReconfigureReport> Reconfigure(const std::map<int, int>& target);

  /// Current connection on a north port.
  std::optional<Connection> ConnectionOn(int north) const;
  std::vector<Connection> Connections() const;
  int ConnectionCount() const { return static_cast<int>(north_to_south_.size()); }
  /// The complete current cross-connect map (logical north -> south); the
  /// ground truth the control plane's snapshot/rollback machinery is judged
  /// against in tests.
  const std::map<int, int>& CurrentMapping() const { return north_to_south_; }

  /// Injects a mirror failure affecting the given port side. Returns true if
  /// the port survived (a spare mirror was mapped in). A destroyed port
  /// rejects future connections (until remapped to a spare port).
  bool InjectMirrorFailure(bool north_side, int port);

  bool PortUsable(bool north_side, int port) const;

  /// --- spare ports (§4.1.1: 128 usable + 8 spares "for link testing and
  /// repairs") -----------------------------------------------------------
  /// Logical fabric ports 0..127 map to physical collimator positions; the
  /// 8 spare positions form a repair pool. RemapToSpare re-patches a
  /// degraded or dead logical port onto the next spare position and
  /// re-establishes its connection through the new path. Fails when the
  /// pool is empty or the logical port is out of the usable range.
  common::Status RemapToSpare(bool north_side, int logical_port);
  int SparePortsRemaining(bool north_side) const;
  /// Physical collimator position currently backing a logical port.
  int PhysicalPort(bool north_side, int logical_port) const;

  /// Re-measures the optical path of every active connection (in-situ link
  /// monitoring).
  std::vector<Connection> SurveyConnections() const;

  /// Structural audit of the whole switch state: N->S and S->N maps are
  /// mutual inverses (bijectivity), the active-connection table agrees with
  /// them, no active connection rides a dead mirror chain, logical->physical
  /// patch maps are injective and disjoint from the spare pools. Runs
  /// automatically at every transaction boundary when validation mode is on
  /// (common::ValidationEnabled()); violations go through LW_CHECK_OK.
  common::Status ValidateInvariants() const;

  /// Test-only corruption hooks for the validator's negative tests: write
  /// inconsistent state directly, bypassing the transactional API.
  void TestOnlyCorruptMapping(int north, int south);
  void TestOnlyKillPortUnderConnection(bool north_side, int logical_port);

  const SwitchTelemetry& telemetry() const { return telemetry_; }
  Chassis& chassis() { return chassis_; }
  const Chassis& chassis() const { return chassis_; }

  /// Starts mirroring switch activity into `hub` (nullptr detaches): counts
  /// of reconfigurations / connects / rejected commands, the per-path
  /// insertion-loss histogram of every established connection (the Fig. 10
  /// distribution), and per-transaction switch durations. Series carry a
  /// `switch=<name>` label.
  void AttachTelemetry(telemetry::Hub* hub);

  /// Fixed command/settle overhead per reconfiguration transaction.
  static constexpr double kCommandOverheadMs = 2.0;

 private:
  common::Result<Connection> EstablishInternal(int north, int south);
  void NoteRejected();
  /// Runs ValidateInvariants through LW_CHECK_OK when validation mode is on.
  void MaybeValidate(const char* boundary) const;

  std::string name_;
  OpticalCore core_;
  Chassis chassis_;
  std::map<int, int> north_to_south_;   // logical ports
  std::map<int, int> south_to_north_;   // logical ports
  std::map<int, Connection> active_;    // keyed by logical north port
  std::vector<bool> north_usable_;      // indexed by physical port
  std::vector<bool> south_usable_;      // indexed by physical port
  std::vector<int> north_physical_;     // logical -> physical
  std::vector<int> south_physical_;
  std::vector<int> north_spares_;       // free physical spare positions
  std::vector<int> south_spares_;
  SwitchTelemetry telemetry_;
  double last_alignment_ms_ = 0.0;
  telemetry::Counter* reconfig_counter_ = nullptr;
  telemetry::Counter* connect_counter_ = nullptr;
  telemetry::Counter* rejected_counter_ = nullptr;
  telemetry::HistogramMetric* insertion_loss_hist_ = nullptr;
  telemetry::HistogramMetric* switch_duration_hist_ = nullptr;
};

}  // namespace lightwave::ocs
