// 2D fiber collimator arrays (§3.2.2): a 136x136-port fiber array bonded to
// a 2D lens array. Each port contributes coupling loss and — because the
// fiber/lens interface is the dominant reflector in the switch (§4.1.1) —
// a return-loss figure that feeds the link MPI budget.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lightwave::ocs {

struct CollimatorPort {
  common::Decibel coupling_loss{0.4};
  common::Decibel return_loss{-46.0};
  /// Extra loss from the fiber splice and connector behind this port — the
  /// source of the tail in the Fig. 10a histogram.
  common::Decibel pigtail_loss{0.15};
};

class CollimatorArray {
 public:
  /// Samples per-port manufacturing variation. Typical port: 0.4 dB
  /// coupling + 0.15 dB pigtail; a small fraction of ports carry an extra
  /// splice/connector penalty (the histogram tail).
  CollimatorArray(common::Rng& rng, int ports);

  int port_count() const { return static_cast<int>(ports_.size()); }
  const CollimatorPort& port(int i) const { return ports_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<CollimatorPort> ports_;
};

}  // namespace lightwave::ocs
