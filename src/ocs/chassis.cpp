#include "ocs/chassis.h"

#include <cassert>
#include <cmath>

#include "common/math.h"

namespace lightwave::ocs {

const char* ToString(FruKind kind) {
  switch (kind) {
    case FruKind::kCpu: return "cpu";
    case FruKind::kFpga: return "fpga";
    case FruKind::kHvDriverBoard: return "hv-driver";
    case FruKind::kPowerSupply: return "psu";
    case FruKind::kFanModule: return "fan";
    case FruKind::kOpticalCore: return "optical-core";
  }
  return "?";
}

std::vector<FruSpec> PalomarFruComplement() {
  // MTBF figures chosen so the composite chassis availability lands at the
  // published >= 99.98% (§4.1.1) with the HV drivers as the weakest FRU.
  return {
      FruSpec{.kind = FruKind::kCpu, .count = 1, .required = 1, .mtbf_hours = 400'000,
              .mttr_hours = 4, .hot_swappable = false, .swap_disturbs_mirrors = false},
      FruSpec{.kind = FruKind::kFpga, .count = 1, .required = 1, .mtbf_hours = 500'000,
              .mttr_hours = 4, .hot_swappable = false, .swap_disturbs_mirrors = false},
      FruSpec{.kind = FruKind::kHvDriverBoard, .count = 8, .required = 8,
              .mtbf_hours = 150'000, .mttr_hours = 2, .hot_swappable = true,
              .swap_disturbs_mirrors = true},
      FruSpec{.kind = FruKind::kPowerSupply, .count = 2, .required = 1,
              .mtbf_hours = 200'000, .mttr_hours = 2, .hot_swappable = true,
              .swap_disturbs_mirrors = false},
      FruSpec{.kind = FruKind::kFanModule, .count = 4, .required = 3, .mtbf_hours = 100'000,
              .mttr_hours = 1, .hot_swappable = true, .swap_disturbs_mirrors = false},
      FruSpec{.kind = FruKind::kOpticalCore, .count = 1, .required = 1,
              .mtbf_hours = 2'000'000, .mttr_hours = 24, .hot_swappable = false,
              .swap_disturbs_mirrors = true},
  };
}

int FruInstance::UpCount() const {
  int up = 0;
  for (bool u : unit_up) up += u ? 1 : 0;
  return up;
}

Chassis::Chassis(std::vector<FruSpec> complement) {
  for (auto& spec : complement) {
    FruInstance inst;
    inst.spec = spec;
    inst.unit_up.assign(static_cast<std::size_t>(spec.count), true);
    frus_.push_back(std::move(inst));
  }
}

double Chassis::SteadyStateAvailability() const {
  double availability = 1.0;
  for (const auto& fru : frus_) {
    const double unit_avail =
        fru.spec.mtbf_hours / (fru.spec.mtbf_hours + fru.spec.mttr_hours);
    availability *=
        common::AtLeastKofN(fru.spec.count, fru.spec.required, unit_avail);
  }
  return availability;
}

FruInstance* Chassis::Find(FruKind kind) {
  for (auto& fru : frus_) {
    if (fru.spec.kind == kind) return &fru;
  }
  return nullptr;
}

const FruInstance* Chassis::Find(FruKind kind) const {
  for (const auto& fru : frus_) {
    if (fru.spec.kind == kind) return &fru;
  }
  return nullptr;
}

bool Chassis::FailUnit(FruKind kind, int unit) {
  FruInstance* fru = Find(kind);
  assert(fru != nullptr);
  assert(unit >= 0 && unit < fru->spec.count);
  fru->unit_up[static_cast<std::size_t>(unit)] = false;
  return Operational();
}

bool Chassis::RepairUnit(FruKind kind, int unit) {
  FruInstance* fru = Find(kind);
  assert(fru != nullptr);
  assert(unit >= 0 && unit < fru->spec.count);
  fru->unit_up[static_cast<std::size_t>(unit)] = true;
  return fru->spec.swap_disturbs_mirrors;
}

bool Chassis::Operational() const {
  for (const auto& fru : frus_) {
    if (!fru.Operational()) return false;
  }
  return true;
}

double Chassis::PowerDrawWatts() const {
  // §4.1.1: the entire system peaks at 108 W. Budget: core electronics
  // (CPU+FPGA) 30 W, 8 HV drivers x 7 W, 2 PSUs x 4 W overhead, 4 fans x
  // 3.5 W.
  double watts = 30.0;
  for (const auto& fru : frus_) {
    const double per_unit = [&] {
      switch (fru.spec.kind) {
        case FruKind::kHvDriverBoard: return 7.0;
        case FruKind::kPowerSupply: return 4.0;
        case FruKind::kFanModule: return 3.5;
        default: return 0.0;
      }
    }();
    watts += per_unit * fru.UpCount();
  }
  return watts;
}

}  // namespace lightwave::ocs
