#include "ocs/palomar.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/check.h"
#include "telemetry/hub.h"

namespace lightwave::ocs {

using common::Result;
using common::Status;

PalomarSwitch::PalomarSwitch(std::uint64_t seed, std::string name)
    : name_(std::move(name)),
      core_(common::Rng(seed)),
      north_usable_(kPalomarPortCount, true),
      south_usable_(kPalomarPortCount, true) {
  north_physical_.resize(kPalomarUsablePorts);
  south_physical_.resize(kPalomarUsablePorts);
  for (int i = 0; i < kPalomarUsablePorts; ++i) {
    north_physical_[static_cast<std::size_t>(i)] = i;
    south_physical_[static_cast<std::size_t>(i)] = i;
  }
  for (int i = kPalomarUsablePorts; i < kPalomarPortCount; ++i) {
    north_spares_.push_back(i);
    south_spares_.push_back(i);
  }
}

void PalomarSwitch::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    reconfig_counter_ = connect_counter_ = rejected_counter_ = nullptr;
    insertion_loss_hist_ = switch_duration_hist_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  const telemetry::LabelSet labels{{"switch", name_}};
  reconfig_counter_ = &metrics.GetCounter("lightwave_ocs_reconfigurations_total", labels);
  connect_counter_ = &metrics.GetCounter("lightwave_ocs_connects_total", labels);
  rejected_counter_ = &metrics.GetCounter("lightwave_ocs_rejected_commands_total", labels);
  insertion_loss_hist_ = &metrics.GetHistogram("lightwave_ocs_insertion_loss_db", labels);
  switch_duration_hist_ = &metrics.GetHistogram("lightwave_ocs_switch_duration_ms", labels);
}

void PalomarSwitch::NoteRejected() {
  ++telemetry_.rejected_commands;
  if (rejected_counter_ != nullptr) rejected_counter_->Inc();
}

int PalomarSwitch::PhysicalPort(bool north_side, int logical_port) const {
  assert(logical_port >= 0 && logical_port < kPalomarUsablePorts);
  return (north_side ? north_physical_ : south_physical_)[static_cast<std::size_t>(
      logical_port)];
}

int PalomarSwitch::SparePortsRemaining(bool north_side) const {
  return static_cast<int>((north_side ? north_spares_ : south_spares_).size());
}

common::Status PalomarSwitch::RemapToSpare(bool north_side, int logical_port) {
  if (logical_port < 0 || logical_port >= kPalomarUsablePorts) {
    return common::InvalidArgument("logical port out of usable range");
  }
  auto& spares = north_side ? north_spares_ : south_spares_;
  if (spares.empty()) {
    return common::ResourceExhausted("spare port pool exhausted");
  }
  auto& mapping = north_side ? north_physical_ : south_physical_;
  auto& usable = north_side ? north_usable_ : south_usable_;
  // Retire the old physical position (degraded splice / dead mirror chain)
  // and re-patch the logical port onto the spare.
  const int old_physical = mapping[static_cast<std::size_t>(logical_port)];
  usable[static_cast<std::size_t>(old_physical)] = false;
  mapping[static_cast<std::size_t>(logical_port)] = spares.back();
  spares.pop_back();

  // Re-establish any connection that was riding the old path.
  int north_logical = -1;
  if (north_side) {
    if (north_to_south_.contains(logical_port)) north_logical = logical_port;
  } else {
    auto it = south_to_north_.find(logical_port);
    if (it != south_to_north_.end()) north_logical = it->second;
  }
  if (north_logical >= 0) {
    const int south = north_to_south_.at(north_logical);
    (void)Disconnect(north_logical);
    auto reconnected = Connect(north_logical, south);
    if (!reconnected.ok()) return reconnected.error();
  }
  MaybeValidate("RemapToSpare");
  return common::Status::Ok();
}

Result<Connection> PalomarSwitch::EstablishInternal(int north, int south) {
  if (north < 0 || north >= kPalomarUsablePorts || south < 0 ||
      south >= kPalomarUsablePorts) {
    NoteRejected();
    return common::InvalidArgument("port index out of usable range");
  }
  const int north_phys = PhysicalPort(true, north);
  const int south_phys = PhysicalPort(false, south);
  if (!north_usable_[static_cast<std::size_t>(north_phys)] ||
      !south_usable_[static_cast<std::size_t>(south_phys)]) {
    NoteRejected();
    return common::Unavailable("port has a dead mirror chain");
  }
  if (north_to_south_.contains(north) || south_to_north_.contains(south)) {
    NoteRejected();
    return common::AlreadyExists("port already connected");
  }
  auto metrics = core_.EstablishPath(north_phys, south_phys);
  if (!metrics.has_value()) {
    NoteRejected();
    return common::Unavailable("mirror chain failed during establish");
  }
  Connection conn{
      .north = north,
      .south = south,
      .insertion_loss = metrics->insertion_loss,
      .return_loss = metrics->return_loss,
  };
  north_to_south_[north] = south;
  south_to_north_[south] = north;
  active_[north] = conn;
  last_alignment_ms_ = metrics->alignment_time_ms;
  ++telemetry_.connects;
  if (connect_counter_ != nullptr) connect_counter_->Inc();
  if (insertion_loss_hist_ != nullptr) {
    insertion_loss_hist_->Observe(conn.insertion_loss.value());
  }
  return conn;
}

Result<Connection> PalomarSwitch::Connect(int north, int south) {
  auto result = EstablishInternal(north, south);
  if (result.ok()) telemetry_.cumulative_switch_ms += last_alignment_ms_ + kCommandOverheadMs;
  MaybeValidate("Connect");
  return result;
}

Status PalomarSwitch::Disconnect(int north) {
  auto it = north_to_south_.find(north);
  if (it == north_to_south_.end()) {
    NoteRejected();
    return common::NotFound("no connection on north port");
  }
  south_to_north_.erase(it->second);
  north_to_south_.erase(it);
  active_.erase(north);
  ++telemetry_.disconnects;
  MaybeValidate("Disconnect");
  return Status::Ok();
}

Result<ReconfigureReport> PalomarSwitch::Reconfigure(const std::map<int, int>& target) {
  // Validate first: bijective, in-range, usable. No state change on failure.
  std::vector<bool> south_seen(kPalomarUsablePorts, false);
  for (const auto& [north, south] : target) {
    if (north < 0 || north >= kPalomarUsablePorts || south < 0 ||
        south >= kPalomarUsablePorts) {
      NoteRejected();
      return common::InvalidArgument("target references out-of-range port");
    }
    if (south_seen[static_cast<std::size_t>(south)]) {
      NoteRejected();
      return common::InvalidArgument("target is not bijective (south reused)");
    }
    south_seen[static_cast<std::size_t>(south)] = true;
    if (!north_usable_[static_cast<std::size_t>(PhysicalPort(true, north))] ||
        !south_usable_[static_cast<std::size_t>(PhysicalPort(false, south))]) {
      NoteRejected();
      return common::Unavailable("target references dead port");
    }
  }

  ReconfigureReport report;
  double max_alignment_ms = 0.0;

  // Tear down connections that are absent or changed in the target.
  std::vector<int> to_remove;
  for (const auto& [north, south] : north_to_south_) {
    auto it = target.find(north);
    if (it == target.end() || it->second != south) {
      to_remove.push_back(north);
    } else {
      report.undisturbed.push_back(active_.at(north));
    }
  }
  for (int north : to_remove) {
    report.removed.push_back(active_.at(north));
    south_to_north_.erase(north_to_south_.at(north));
    north_to_south_.erase(north);
    active_.erase(north);
    ++telemetry_.disconnects;
  }

  // Establish the new connections.
  for (const auto& [north, south] : target) {
    if (north_to_south_.contains(north)) continue;  // undisturbed
    auto result = EstablishInternal(north, south);
    if (!result.ok()) {
      // Mirror chain death mid-transaction: report what we achieved so the
      // control plane can re-plan; partially-applied state is the honest
      // hardware behaviour.
      return result.error();
    }
    report.established.push_back(result.value());
    max_alignment_ms = std::max(max_alignment_ms, last_alignment_ms_);
  }

  report.duration_ms = kCommandOverheadMs + max_alignment_ms;
  telemetry_.cumulative_switch_ms += report.duration_ms;
  ++telemetry_.reconfigurations;
  if (reconfig_counter_ != nullptr) reconfig_counter_->Inc();
  if (switch_duration_hist_ != nullptr) switch_duration_hist_->Observe(report.duration_ms);
  MaybeValidate("Reconfigure");
  return report;
}

std::optional<Connection> PalomarSwitch::ConnectionOn(int north) const {
  auto it = active_.find(north);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

std::vector<Connection> PalomarSwitch::Connections() const {
  std::vector<Connection> all;
  all.reserve(active_.size());
  for (const auto& [north, conn] : active_) all.push_back(conn);
  return all;
}

bool PalomarSwitch::InjectMirrorFailure(bool north_side, int port) {
  assert(port >= 0 && port < kPalomarUsablePorts);
  const int port_phys = PhysicalPort(north_side, port);
  const auto& array = north_side ? core_.array_a() : core_.array_b();
  const int physical = array.PhysicalMirror(port_phys);
  const bool survived = core_.FailMirror(north_side ? 0 : 1, physical);
  if (!survived) {
    (north_side ? north_usable_ : south_usable_)[static_cast<std::size_t>(port_phys)] =
        false;
    // Tear down any active connection through the dead port.
    if (north_side) {
      if (north_to_south_.contains(port)) (void)Disconnect(port);
    } else {
      auto it = south_to_north_.find(port);
      if (it != south_to_north_.end()) (void)Disconnect(it->second);
    }
    MaybeValidate("InjectMirrorFailure");
    return false;
  }
  // Spare mirror mapped in; the path must be re-aligned. Re-establish any
  // active connection through this port.
  int north_port = -1;
  if (north_side) {
    if (north_to_south_.contains(port)) north_port = port;
  } else {
    auto it = south_to_north_.find(port);
    if (it != south_to_north_.end()) north_port = it->second;
  }
  if (north_port >= 0) {
    const int south = north_to_south_.at(north_port);
    (void)Disconnect(north_port);
    (void)Connect(north_port, south);
  }
  MaybeValidate("InjectMirrorFailure");
  return true;
}

bool PalomarSwitch::PortUsable(bool north_side, int port) const {
  assert(port >= 0 && port < kPalomarUsablePorts);
  return (north_side ? north_usable_ : south_usable_)[static_cast<std::size_t>(
      PhysicalPort(north_side, port))];
}

common::Status PalomarSwitch::ValidateInvariants() const {
  // Bijectivity: the two direction maps must be exact mutual inverses.
  if (north_to_south_.size() != south_to_north_.size()) {
    return common::Internal("N->S and S->N maps differ in size");
  }
  if (active_.size() != north_to_south_.size()) {
    return common::Internal("active-connection table out of sync with N->S map");
  }
  for (const auto& [north, south] : north_to_south_) {
    if (north < 0 || north >= kPalomarUsablePorts || south < 0 ||
        south >= kPalomarUsablePorts) {
      return common::Internal("connection references out-of-range port");
    }
    auto inverse = south_to_north_.find(south);
    if (inverse == south_to_north_.end() || inverse->second != north) {
      return common::Internal("S->N map is not the inverse of N->S at north " +
                              std::to_string(north));
    }
    auto conn = active_.find(north);
    if (conn == active_.end() || conn->second.north != north ||
        conn->second.south != south) {
      return common::Internal("active table disagrees with N->S map at north " +
                              std::to_string(north));
    }
    // Dead-mirror consistency: an active connection must never ride a port
    // whose mirror chain is marked dead.
    if (!north_usable_[static_cast<std::size_t>(PhysicalPort(true, north))] ||
        !south_usable_[static_cast<std::size_t>(PhysicalPort(false, south))]) {
      return common::Internal("active connection rides a dead mirror chain");
    }
  }
  // Patch maps: logical -> physical must be injective, in range, and
  // disjoint from the spare pools.
  for (bool north_side : {true, false}) {
    const auto& mapping = north_side ? north_physical_ : south_physical_;
    const auto& spares = north_side ? north_spares_ : south_spares_;
    std::set<int> seen;
    for (int physical : mapping) {
      if (physical < 0 || physical >= kPalomarPortCount) {
        return common::Internal("physical patch position out of range");
      }
      if (!seen.insert(physical).second) {
        return common::Internal("two logical ports patched to one physical position");
      }
    }
    for (int spare : spares) {
      if (spare < 0 || spare >= kPalomarPortCount || seen.contains(spare)) {
        return common::Internal("spare pool overlaps the active patch map");
      }
    }
  }
  return common::Status::Ok();
}

void PalomarSwitch::MaybeValidate(const char* boundary) const {
  if (!common::ValidationEnabled()) return;
  LW_CHECK_OK(ValidateInvariants()) << "switch '" << name_ << "' after " << boundary;
}

void PalomarSwitch::TestOnlyCorruptMapping(int north, int south) {
  north_to_south_[north] = south;
}

void PalomarSwitch::TestOnlyKillPortUnderConnection(bool north_side, int logical_port) {
  auto& usable = north_side ? north_usable_ : south_usable_;
  usable[static_cast<std::size_t>(PhysicalPort(north_side, logical_port))] = false;
}

std::vector<Connection> PalomarSwitch::SurveyConnections() const {
  std::vector<Connection> surveyed;
  surveyed.reserve(active_.size());
  for (const auto& [north, conn] : active_) {
    const CorePathMetrics metrics = core_.MeasurePath(PhysicalPort(true, conn.north),
                                                      PhysicalPort(false, conn.south));
    surveyed.push_back(Connection{
        .north = conn.north,
        .south = conn.south,
        .insertion_loss = metrics.insertion_loss,
        .return_loss = metrics.return_loss,
    });
  }
  return surveyed;
}

}  // namespace lightwave::ocs
