#include "ocs/mems.h"

#include <cassert>
#include <cmath>

namespace lightwave::ocs {

MemsArray::MemsArray(common::Rng& rng, double mirror_yield) {
  // Fabricate until the die qualifies (the paper's yield strategy: 176
  // fabricated so that >= 136 qualify with near-certainty).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    mirrors_.assign(kFabricatedMirrors, MirrorState{});
    std::vector<int> qualified;
    for (int i = 0; i < kFabricatedMirrors; ++i) {
      const bool good = rng.Bernoulli(mirror_yield);
      mirrors_[static_cast<std::size_t>(i)].functional = good;
      if (good) qualified.push_back(i);
    }
    if (static_cast<int>(qualified.size()) >= kUsedMirrors) {
      logical_to_physical_.assign(qualified.begin(), qualified.begin() + kUsedMirrors);
      spare_pool_.assign(qualified.begin() + kUsedMirrors, qualified.end());
      return;
    }
  }
  assert(false && "MEMS die yield catastrophically low");
}

int MemsArray::PhysicalMirror(int logical) const {
  assert(logical >= 0 && logical < kUsedMirrors);
  return logical_to_physical_[static_cast<std::size_t>(logical)];
}

void MemsArray::Actuate(common::Rng& rng, int logical, double x, double y) {
  MirrorState& m = mirrors_[static_cast<std::size_t>(PhysicalMirror(logical))];
  assert(m.functional);
  m.target_x = x;
  m.target_y = y;
  m.actual_x = x + rng.Gaussian(0.0, kOpenLoopErrorStd);
  m.actual_y = y + rng.Gaussian(0.0, kOpenLoopErrorStd);
}

bool MemsArray::FailMirror(common::Rng& rng, int physical) {
  assert(physical >= 0 && physical < kFabricatedMirrors);
  MirrorState& m = mirrors_[static_cast<std::size_t>(physical)];
  if (!m.functional) return true;  // already failed, nothing to remap
  m.functional = false;
  // If a logical slot was using this mirror, remap to a spare.
  for (auto& phys : logical_to_physical_) {
    if (phys == physical) {
      if (spare_pool_.empty()) return false;
      phys = spare_pool_.back();
      spare_pool_.pop_back();
      // The substituted mirror starts unaligned.
      MirrorState& sub = mirrors_[static_cast<std::size_t>(phys)];
      sub.actual_x = sub.target_x + rng.Gaussian(0.0, kOpenLoopErrorStd);
      sub.actual_y = sub.target_y + rng.Gaussian(0.0, kOpenLoopErrorStd);
      return true;
    }
  }
  return true;  // failed mirror was an unmapped spare or already-dead unit
}

int MemsArray::SparesRemaining() const { return static_cast<int>(spare_pool_.size()); }

int MemsArray::FunctionalCount() const {
  int count = 0;
  for (const auto& m : mirrors_) count += m.functional ? 1 : 0;
  return count;
}

double MemsArray::PointingError(int logical) const {
  const MirrorState& m = mirrors_[static_cast<std::size_t>(PhysicalMirror(logical))];
  const double dx = m.actual_x - m.target_x;
  const double dy = m.actual_y - m.target_y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace lightwave::ocs
