#include "ocs/alignment.h"

#include <cmath>

namespace lightwave::ocs {

AlignmentResult AlignmentController::Align(common::Rng& rng, MemsArray& array,
                                           int logical) const {
  AlignmentResult result;
  MirrorState& m = array.mirror(array.PhysicalMirror(logical));
  for (int i = 0; i < config_.max_iterations; ++i) {
    ++result.iterations;
    result.elapsed_ms += config_.iteration_time_ms;
    // Camera measures the pointing error.
    const double true_x = m.actual_x - m.target_x;
    const double true_y = m.actual_y - m.target_y;
    double measured_x = 0.0, measured_y = 0.0;
    if (config_.use_camera) {
      // The monitor-spot image pipeline: render, background-subtract,
      // centroid. When the spot is outside the tracking ROI, fall back to
      // the wide-field acquisition mode (coarser but always finds it).
      if (!MeasurePointingError(config_.camera, true_x, true_y, rng, &measured_x,
                                &measured_y)) {
        measured_x = true_x + rng.Gaussian(0.0, config_.acquisition_noise_std);
        measured_y = true_y + rng.Gaussian(0.0, config_.acquisition_noise_std);
      }
    } else {
      measured_x = true_x + rng.Gaussian(0.0, config_.measurement_noise_std);
      measured_y = true_y + rng.Gaussian(0.0, config_.measurement_noise_std);
    }
    const double measured_mag = std::hypot(measured_x, measured_y);
    if (measured_mag < config_.convergence_threshold) {
      result.converged = true;
      break;
    }
    // HV update removes `gain` of the measured error (plus actuation noise
    // well below the open-loop figure).
    m.actual_x -= config_.gain * measured_x + rng.Gaussian(0.0, 2.0e-6);
    m.actual_y -= config_.gain * measured_y + rng.Gaussian(0.0, 2.0e-6);
  }
  result.residual_error = array.PointingError(logical);
  if (!result.converged) {
    result.converged = result.residual_error < config_.convergence_threshold;
  }
  return result;
}

common::Decibel MisalignmentLoss(double pointing_error_rad) {
  // Gaussian beam overlap: the 1/e^2 angular tolerance of the core is
  // ~0.5 mrad; loss grows quadratically in the normalized error.
  constexpr double kAngularTolerance = 5.0e-4;
  const double x = pointing_error_rad / kAngularTolerance;
  return common::Decibel{4.343 * x * x};  // 10*log10(e) * (error^2) overlap
}

}  // namespace lightwave::ocs
