// The Palomar optical core (Fig. 4): input/output signals enter through two
// 2D fiber collimator arrays and bounce off two MEMS mirror arrays. A
// connection (north port N -> south port S) uses mirror N on array A and
// mirror S on array B; both are steered and then closed-loop aligned using
// the camera path. The core is broadband and reciprocal: the same path
// carries both directions of a bidi link.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "ocs/alignment.h"
#include "ocs/collimator.h"
#include "ocs/mems.h"

namespace lightwave::ocs {

struct CorePathMetrics {
  common::Decibel insertion_loss;
  /// Worst single-interface return loss along the path (links care about
  /// the dominant reflector).
  common::Decibel return_loss;
  double alignment_time_ms = 0.0;
  int alignment_iterations = 0;
};

class OpticalCore {
 public:
  OpticalCore(common::Rng rng, int ports = kUsedMirrors);

  int port_count() const { return ports_; }

  /// Steers the two mirrors for the (north, south) pair and runs closed-loop
  /// alignment. Returns nullopt if either mirror chain is dead (no spares).
  std::optional<CorePathMetrics> EstablishPath(int north, int south);

  /// Loss of an established path without re-aligning (telemetry readback).
  CorePathMetrics MeasurePath(int north, int south) const;

  /// Injects a mirror failure on one of the arrays (0 = north-side array A,
  /// 1 = south-side array B). Returns false when the spare pool is empty and
  /// the port becomes unusable.
  bool FailMirror(int array_index, int physical_mirror);

  const MemsArray& array_a() const { return array_a_; }
  const MemsArray& array_b() const { return array_b_; }

  /// Base (perfectly aligned) loss through the core: two mirror reflections
  /// plus free-space propagation and the dichroic combiner/splitter.
  static constexpr double kBaseCoreLossDb = 0.5;

 private:
  /// Beam steering target for connecting logical mirror `from` on one array
  /// toward logical mirror `to` on the other; a simple geometric fan-out
  /// over the 2D grid.
  static void TargetAngles(int from, int to, double* x, double* y);

  common::Rng rng_;
  int ports_;
  CollimatorArray collimator_north_;
  CollimatorArray collimator_south_;
  MemsArray array_a_;
  MemsArray array_b_;
  AlignmentController alignment_;
};

}  // namespace lightwave::ocs
