#include "ocs/optical_core.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lightwave::ocs {

using common::Decibel;

OpticalCore::OpticalCore(common::Rng rng, int ports)
    : rng_(rng),
      ports_(ports),
      collimator_north_(rng_, ports),
      collimator_south_(rng_, ports),
      array_a_(rng_),
      array_b_(rng_) {
  assert(ports > 0 && ports <= kUsedMirrors);
}

void OpticalCore::TargetAngles(int from, int to, double* x, double* y) {
  // 2D grid geometry: mirrors sit on a 12x12-ish grid (136 used); the tilt
  // needed is proportional to the row/column offset between source and
  // destination across the core.
  constexpr int kGridWidth = 12;
  constexpr double kAnglePerCell = 1.2e-2;  // radians per grid cell
  const int from_row = from / kGridWidth, from_col = from % kGridWidth;
  const int to_row = to / kGridWidth, to_col = to % kGridWidth;
  *x = (to_col - from_col) * kAnglePerCell / 2.0;
  *y = (to_row - from_row) * kAnglePerCell / 2.0;
}

std::optional<CorePathMetrics> OpticalCore::EstablishPath(int north, int south) {
  assert(north >= 0 && north < ports_ && south >= 0 && south < ports_);
  // Verify both logical mirrors are alive (their mapped physical mirror is
  // functional; MemsArray remaps onto spares on failure).
  const auto alive = [](const MemsArray& a, int logical) {
    return a.mirror(a.PhysicalMirror(logical)).functional;
  };
  if (!alive(array_a_, north) || !alive(array_b_, south)) return std::nullopt;

  double ax = 0.0, ay = 0.0, bx = 0.0, by = 0.0;
  TargetAngles(north, south, &ax, &ay);
  TargetAngles(south, north, &bx, &by);
  array_a_.Actuate(rng_, north, ax, ay);
  array_b_.Actuate(rng_, south, bx, by);

  const AlignmentResult ra = alignment_.Align(rng_, array_a_, north);
  const AlignmentResult rb = alignment_.Align(rng_, array_b_, south);

  CorePathMetrics metrics = MeasurePath(north, south);
  metrics.alignment_time_ms = std::max(ra.elapsed_ms, rb.elapsed_ms);
  metrics.alignment_iterations = std::max(ra.iterations, rb.iterations);
  return metrics;
}

CorePathMetrics OpticalCore::MeasurePath(int north, int south) const {
  const CollimatorPort& in = collimator_north_.port(north);
  const CollimatorPort& out = collimator_south_.port(south);
  Decibel loss{kBaseCoreLossDb};
  loss += in.coupling_loss + in.pigtail_loss;
  loss += out.coupling_loss + out.pigtail_loss;
  loss += MisalignmentLoss(array_a_.PointingError(north));
  loss += MisalignmentLoss(array_b_.PointingError(south));
  return CorePathMetrics{
      .insertion_loss = loss,
      .return_loss = std::max(in.return_loss, out.return_loss),
      .alignment_time_ms = 0.0,
      .alignment_iterations = 0,
  };
}

bool OpticalCore::FailMirror(int array_index, int physical_mirror) {
  MemsArray& array = array_index == 0 ? array_a_ : array_b_;
  return array.FailMirror(rng_, physical_mirror);
}

}  // namespace lightwave::ocs
