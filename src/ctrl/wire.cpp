#include "ctrl/wire.h"

#include <array>
#include <bit>
#include <cstring>

#include "common/check.h"

namespace lightwave::ctrl {

void WireWriter::PutU8(std::uint8_t v) { buffer_.push_back(v); }

void WireWriter::PutU16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::PutDouble(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::PutBytes(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<std::uint8_t> WireReader::GetU8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> WireReader::GetU16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> WireReader::GetU32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> WireReader::GetU64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<std::uint64_t> WireReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1 || shift > 63) return std::nullopt;
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::optional<double> WireReader::GetDouble() {
  auto bits = GetU64();
  if (!bits) return std::nullopt;
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> WireReader::GetString() {
  auto size = GetVarint();
  if (!size || remaining() < *size) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(*size));
  pos_ += static_cast<std::size_t>(*size);
  return s;
}

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> FrameMessage(const std::vector<std::uint8_t>& payload,
                                       std::uint16_t version) {
  WireWriter w;
  w.PutU16(version);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutBytes(payload.data(), payload.size());
  // The CRC covers the header too: a corrupted version or length field must
  // not slip through (the header is what selects the decode path).
  w.PutU32(Crc32(w.buffer().data(), w.buffer().size()));
  return w.Take();
}

std::optional<UnframedMessage> UnframeMessage(const std::vector<std::uint8_t>& frame) {
  // Each rejection is an LW_ENSURE contract: malformed input is expected at
  // runtime (never fatal), but every violation fires the failure handler so
  // corrupt frames surface in counters instead of vanishing silently.
  WireReader r(frame);
  auto version = r.GetU16();
  auto length = r.GetU32();
  if (!LW_ENSURE(version.has_value() && length.has_value())) return std::nullopt;
  if (!LW_ENSURE(*version >= kMinSupportedVersion)) return std::nullopt;
  // size_t arithmetic: `*length + 4u` in uint32 would wrap for a hostile
  // length field and let the bounds check pass.
  if (!LW_ENSURE(r.remaining() >= static_cast<std::size_t>(*length) + 4)) {
    return std::nullopt;
  }
  const std::size_t covered = 6 + static_cast<std::size_t>(*length);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(frame[covered + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (!LW_ENSURE(stored == Crc32(frame.data(), covered))) return std::nullopt;
  std::vector<std::uint8_t> payload(frame.begin() + 6,
                                    frame.begin() + static_cast<long>(covered));
  return UnframedMessage{.version = *version, .payload = std::move(payload)};
}

}  // namespace lightwave::ctrl
