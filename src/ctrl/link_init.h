// Optical link bring-up state machine. When an OCS reconfigures, every
// affected transceiver loses light, squelches, then must re-acquire:
// signal detect -> CDR lock -> (optional) equalizer adaptation -> FEC frame
// lock -> up. The total bring-up time gates how fast a lightwave fabric can
// usefully reconfigure (§6: fast fabrics need "transceivers with fast
// initialization times"); the phase-reconfiguration study consumes the
// timing this module produces.
#pragma once

#include <cstdint>
#include <string>

namespace lightwave::ctrl {

enum class LinkState {
  kDown,          // administratively down / no module
  kLossOfSignal,  // enabled, no light (e.g., mid-reconfiguration)
  kSignalDetect,  // optical power above threshold, CDR hunting
  kCdrLock,       // clock recovered, equalizer adapting
  kFecLock,       // FEC framer aligning
  kUp,            // passing traffic
};

const char* ToString(LinkState state);

struct LinkInitTiming {
  double signal_detect_us = 10.0;
  double cdr_lock_us = 500.0;
  double equalizer_adapt_us = 800.0;
  double fec_lock_us = 700.0;
  /// Squelch hold-off after light loss before the Rx declares LOS (keeps
  /// microsecond-class glitches from flapping the link).
  double los_holdoff_us = 5.0;

  double TotalBringupUs() const {
    return signal_detect_us + cdr_lock_us + equalizer_adapt_us + fec_lock_us;
  }
};

/// Fast-initialization profile for future microsecond-class fabrics (§6):
/// pre-characterized equalizer state and unsquelched receivers.
LinkInitTiming FastInitTiming();

/// Time-stepped FSM: callers report light presence and advance time; the
/// machine walks the acquisition pipeline and reports flap statistics.
class LinkInitFsm {
 public:
  explicit LinkInitFsm(LinkInitTiming timing = {}) : timing_(timing) {}

  LinkState state() const { return state_; }
  const LinkInitTiming& timing() const { return timing_; }

  /// Light appeared at the receiver (OCS path established).
  void OnLightPresent();
  /// Light disappeared (path torn / mid-switch). An up link rides glitches
  /// shorter than the LOS hold-off; a link still acquiring loses its
  /// partial CDR/FEC progress immediately and re-times bring-up from the
  /// next light-present edge.
  void OnLightLost();
  /// Advances time; acquisition progresses only while light is present.
  void Advance(double us);

  bool IsUp() const { return state_ == LinkState::kUp; }
  /// Wall-clock spent from the last light-present edge to reaching kUp
  /// (valid once up).
  double LastBringupUs() const { return last_bringup_us_; }
  std::uint64_t flap_count() const { return flaps_; }

 private:
  void Reset();

  LinkInitTiming timing_;
  LinkState state_ = LinkState::kLossOfSignal;
  bool light_ = false;
  double phase_elapsed_us_ = 0.0;
  double since_light_us_ = 0.0;
  double los_pending_us_ = -1.0;  // >= 0: light lost, hold-off running
  double last_bringup_us_ = 0.0;
  std::uint64_t flaps_ = 0;
};

}  // namespace lightwave::ctrl
