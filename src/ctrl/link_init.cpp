#include "ctrl/link_init.h"

#include <algorithm>

namespace lightwave::ctrl {

const char* ToString(LinkState state) {
  switch (state) {
    case LinkState::kDown: return "down";
    case LinkState::kLossOfSignal: return "los";
    case LinkState::kSignalDetect: return "signal-detect";
    case LinkState::kCdrLock: return "cdr-lock";
    case LinkState::kFecLock: return "fec-lock";
    case LinkState::kUp: return "up";
  }
  return "?";
}

LinkInitTiming FastInitTiming() {
  return LinkInitTiming{
      .signal_detect_us = 0.5,
      .cdr_lock_us = 5.0,
      .equalizer_adapt_us = 0.0,  // pre-characterized per-path state
      .fec_lock_us = 2.0,
      .los_holdoff_us = 0.1,
  };
}

void LinkInitFsm::Reset() {
  state_ = LinkState::kLossOfSignal;
  phase_elapsed_us_ = 0.0;
  since_light_us_ = 0.0;
}

void LinkInitFsm::OnLightPresent() {
  if (light_) return;
  light_ = true;
  los_pending_us_ = -1.0;
  if (state_ == LinkState::kLossOfSignal) {
    state_ = LinkState::kSignalDetect;
    phase_elapsed_us_ = 0.0;
    since_light_us_ = 0.0;
  }
}

void LinkInitFsm::OnLightLost() {
  if (!light_) return;
  light_ = false;
  switch (state_) {
    case LinkState::kUp:
      // LOS hold-off: an established link only drops if darkness persists.
      los_pending_us_ = 0.0;
      break;
    case LinkState::kSignalDetect:
    case LinkState::kCdrLock:
    case LinkState::kFecLock:
      // Acquisition cannot survive darkness: the CDR/FEC lose whatever
      // partial lock they had the moment light disappears, so progress
      // resets immediately (no hold-off credit) and bring-up restarts —
      // and is re-timed — from the next light-present edge.
      Reset();
      los_pending_us_ = -1.0;
      break;
    default:
      los_pending_us_ = -1.0;
      break;
  }
}

void LinkInitFsm::Advance(double us) {
  while (us > 0.0) {
    if (!light_ && los_pending_us_ >= 0.0) {
      const double until_los = timing_.los_holdoff_us - los_pending_us_;
      const double step = std::min(us, until_los);
      los_pending_us_ += step;
      us -= step;
      if (los_pending_us_ >= timing_.los_holdoff_us) {
        if (state_ == LinkState::kUp) ++flaps_;
        Reset();
        los_pending_us_ = -1.0;
      }
      continue;
    }
    if (!light_ || state_ == LinkState::kDown || state_ == LinkState::kLossOfSignal ||
        state_ == LinkState::kUp) {
      // Nothing progresses: idle time.
      since_light_us_ += light_ ? us : 0.0;
      return;
    }
    // Acquisition phases progress while light is present.
    const double phase_duration = [&] {
      switch (state_) {
        case LinkState::kSignalDetect: return timing_.signal_detect_us;
        case LinkState::kCdrLock: return timing_.cdr_lock_us + timing_.equalizer_adapt_us;
        case LinkState::kFecLock: return timing_.fec_lock_us;
        default: return 0.0;
      }
    }();
    const double remaining = phase_duration - phase_elapsed_us_;
    const double step = std::min(us, remaining);
    phase_elapsed_us_ += step;
    since_light_us_ += step;
    us -= step;
    if (phase_elapsed_us_ >= phase_duration) {
      phase_elapsed_us_ = 0.0;
      switch (state_) {
        case LinkState::kSignalDetect: state_ = LinkState::kCdrLock; break;
        case LinkState::kCdrLock: state_ = LinkState::kFecLock; break;
        case LinkState::kFecLock:
          state_ = LinkState::kUp;
          last_bringup_us_ = since_light_us_;
          break;
        default: break;
      }
    }
  }
}

}  // namespace lightwave::ctrl
