// Control-plane message schema: the commands the fabric manager sends to an
// OCS and the replies/telemetry that come back. Every message round-trips
// through the versioned wire format in wire.h.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/wire.h"

namespace lightwave::ctrl {

enum class MessageType : std::uint8_t {
  kReconfigureRequest = 1,
  kReconfigureReply = 2,
  kTelemetryRequest = 3,
  kTelemetryReply = 4,
  kPortSurveyRequest = 5,
  kPortSurveyReply = 6,
};

struct ReconfigureRequest {
  std::uint64_t transaction_id = 0;
  /// Complete target cross-connect map (north -> south).
  std::map<int, int> target;
};

struct ReconfigureReply {
  std::uint64_t transaction_id = 0;
  bool ok = false;
  std::string error;
  std::uint32_t established = 0;
  std::uint32_t removed = 0;
  std::uint32_t undisturbed = 0;
  double duration_ms = 0.0;
};

struct TelemetryRequest {
  std::uint64_t nonce = 0;
};

struct TelemetryReply {
  std::uint64_t nonce = 0;
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t rejected_commands = 0;
  double cumulative_switch_ms = 0.0;
  double power_draw_w = 0.0;
  bool chassis_operational = false;
};

struct PortSurveyRequest {
  std::uint64_t nonce = 0;
};

struct PortSurveyEntry {
  int north = 0;
  int south = 0;
  double insertion_loss_db = 0.0;
  double return_loss_db = 0.0;
};

struct PortSurveyReply {
  std::uint64_t nonce = 0;
  std::vector<PortSurveyEntry> entries;
};

/// Encoders produce a framed wire message (envelope included).
std::vector<std::uint8_t> Encode(const ReconfigureRequest& msg);
std::vector<std::uint8_t> Encode(const ReconfigureReply& msg);
std::vector<std::uint8_t> Encode(const TelemetryRequest& msg);
std::vector<std::uint8_t> Encode(const TelemetryReply& msg);
std::vector<std::uint8_t> Encode(const PortSurveyRequest& msg);
std::vector<std::uint8_t> Encode(const PortSurveyReply& msg);

/// Peeks the type of a framed message (nullopt on bad frame).
std::optional<MessageType> PeekType(const std::vector<std::uint8_t>& frame);

std::optional<ReconfigureRequest> DecodeReconfigureRequest(
    const std::vector<std::uint8_t>& frame);
std::optional<ReconfigureReply> DecodeReconfigureReply(const std::vector<std::uint8_t>& frame);
std::optional<TelemetryRequest> DecodeTelemetryRequest(const std::vector<std::uint8_t>& frame);
std::optional<TelemetryReply> DecodeTelemetryReply(const std::vector<std::uint8_t>& frame);
std::optional<PortSurveyRequest> DecodePortSurveyRequest(
    const std::vector<std::uint8_t>& frame);
std::optional<PortSurveyReply> DecodePortSurveyReply(const std::vector<std::uint8_t>& frame);

}  // namespace lightwave::ctrl
