// OCS device controller and fabric-wide transaction driver. The device agent
// terminates wire-format commands against a PalomarSwitch; the fabric
// controller fans a topology change out to many agents as a transaction:
// every touched switch is snapshotted first, retries back off exponentially
// with deterministic jitter, and any per-OCS rejection or retry exhaustion
// rolls the already-reconfigured switches back to their snapshots so the
// fabric is never silently left half-applied. Transport is an in-process
// message bus with injectable loss/corruption — plus an optional
// FaultInjector modelling correlated brownouts, agent fail-stop/restart,
// and mirror death mid-reconfigure — so the recovery path is testable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ctrl/messages.h"
#include "ocs/palomar.h"

namespace lightwave::telemetry {
class Counter;
class Gauge;
class HistogramMetric;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ctrl {

class FaultInjector;

/// The device-side agent: decodes a framed command, executes it against the
/// switch, returns a framed reply.
class OcsAgent {
 public:
  explicit OcsAgent(ocs::PalomarSwitch& ocs) : ocs_(ocs) {}

  /// Returns a framed reply; malformed input yields an empty vector (a real
  /// agent would drop the frame, forcing a client timeout/retry).
  std::vector<std::uint8_t> Handle(const std::vector<std::uint8_t>& frame);

  const ocs::PalomarSwitch& device() const { return ocs_; }

  /// Frames this agent dropped as undecodable. Distinguishes protocol
  /// damage (corruption that survived transport) from transport loss, which
  /// the MessageBus counts separately.
  std::uint64_t malformed_frames() const { return malformed_frames_; }

  /// Starts mirroring the malformed-frame count into `hub` (nullptr
  /// detaches; the default no-op sink).
  void AttachTelemetry(telemetry::Hub* hub);

  /// Installs the chaos hook consulted before every executed reconfigure
  /// (nullptr detaches). See ctrl::FaultInjector.
  void SetFaultInjector(FaultInjector* injector) { fault_injector_ = injector; }

  /// Models an agent process restart: volatile state (the idempotency cache)
  /// is lost; the switch hardware keeps its configuration. Safe because
  /// re-executing a reconfigure against an already-matching switch leaves
  /// every connection undisturbed.
  void SimulateRestart();

 private:
  ocs::PalomarSwitch& ocs_;
  /// Idempotency cache key. nullopt until the first executed transaction:
  /// transaction id 0 is a valid first request (a zero-initialised sentinel
  /// here used to swallow it and answer with a stale default reply).
  std::optional<std::uint64_t> last_applied_txn_;
  std::uint64_t malformed_frames_ = 0;
  telemetry::Counter* malformed_counter_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  ReconfigureReply last_reply_;
};

/// Lossy in-process transport between the controller and agents.
class MessageBus {
 public:
  explicit MessageBus(std::uint64_t seed) : rng_(seed) {}

  /// Per-direction drop probability (models i.i.d. management-network loss).
  void SetDropProbability(double p) { drop_probability_ = p; }
  /// Per-direction bit-corruption probability (CRC catches these).
  void SetCorruptProbability(double p) { corrupt_probability_ = p; }

  /// Installs the chaos hook consulted per frame (correlated brownout loss)
  /// and per round trip (agent fail-stop). nullptr detaches.
  void SetFaultInjector(FaultInjector* injector) { fault_injector_ = injector; }

  /// Test/chaos knob: after `frames` more deliveries, drop every subsequent
  /// frame (models the management network partitioning away mid-flight).
  void PartitionAfter(std::uint64_t frames) { partition_after_ = frames; }
  void HealPartition() { partition_after_.reset(); }

  /// Delivers `frame` to `agent` and returns the reply; empty when either
  /// direction dropped the message or the agent is failed-stop.
  std::vector<std::uint8_t> RoundTrip(OcsAgent& agent, std::vector<std::uint8_t> frame);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  /// Mirrors the frame counters into `hub` (nullptr detaches). Handles are
  /// resolved once here, so the per-frame cost is one pointer test.
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  std::vector<std::uint8_t> MaybeMangle(std::vector<std::uint8_t> frame, bool* dropped);

  telemetry::Counter* sent_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Counter* corrupted_counter_ = nullptr;
  common::Rng rng_;
  FaultInjector* fault_injector_ = nullptr;
  std::optional<std::uint64_t> partition_after_;
  double drop_probability_ = 0.0;
  double corrupt_probability_ = 0.0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

/// How a fabric transaction left the switches it touched.
enum class FabricTxnOutcome {
  kApplied,     // every OCS holds the target
  kRolledBack,  // a failure occurred; every touched OCS was restored (an
                // empty `rolled_back` list means nothing had been touched)
  kTorn,        // rollback failed on >= 1 OCS; `torn` lists them
};
const char* ToString(FabricTxnOutcome outcome);

struct FabricTransactionResult {
  bool ok = false;
  FabricTxnOutcome outcome = FabricTxnOutcome::kRolledBack;
  /// Per-OCS replies (keyed by the caller's OCS id).
  std::map<int, ReconfigureReply> replies;
  /// Retries across every exchange of the transaction (snapshot surveys,
  /// applies, and rollbacks alike).
  int retries_used = 0;
  /// Simulated backoff delay accumulated across those retries (µs).
  /// Deterministic given the controller's backoff seed.
  double backoff_us = 0.0;
  /// OCS ids confirmed restored to their pre-transaction snapshots.
  std::vector<int> rolled_back;
  /// OCS ids whose state could not be confirmed restored (the rollback
  /// exhausted retries or was rejected). Their mapping may be the target,
  /// the snapshot, or — after a mid-reconfigure mirror death — a partial
  /// application; per-switch bijectivity still holds (the switch validates
  /// its own invariants at every transaction boundary).
  std::vector<int> torn;
  std::string error;
};

/// Retry backoff schedule:
///   delay_us(attempt) = min(max_us, base_us * multiplier^(attempt-1))
/// then scaled by a deterministic uniform draw in [1-jitter, 1+jitter].
struct BackoffPolicy {
  double base_us = 100.0;
  double multiplier = 2.0;
  double max_us = 10000.0;
  double jitter = 0.5;
};

/// Per-agent circuit breaker state. Closed agents are driven normally; an
/// open breaker fails transactions touching the agent immediately (no retry
/// burn) for `breaker_cooldown` transactions, then lets one probe through
/// (half-open). A successful probe closes the breaker; a failed one re-opens
/// it.
enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* ToString(BreakerState state);

struct FabricControllerOptions {
  int max_retries = 5;
  BackoffPolicy backoff;
  /// Seed for the deterministic backoff jitter stream.
  std::uint64_t backoff_seed = 0xBACC0FFull;
  /// Consecutive transactions in which an agent exhausts its retries before
  /// the circuit breaker opens.
  int breaker_threshold = 3;
  /// Transactions failed fast while open before the half-open probe.
  int breaker_cooldown = 2;
};

/// What a fabric-wide telemetry sweep actually reached. Agents that
/// exhausted their retries land in `failed` with the reason instead of being
/// silently dropped from the reply map.
struct FabricTelemetrySweep {
  std::map<int, TelemetryReply> replies;
  std::map<int, std::string> failed;
};

/// Client-side controller: drives reconfiguration transactions across a set
/// of agents. Transactions are idempotent on the agent (keyed by transaction
/// id), so a lost reply is safe to retry; on failure the controller restores
/// every touched switch to its snapshot so callers never observe a
/// half-applied fabric without an explicit `torn` report.
class FabricController {
 public:
  explicit FabricController(MessageBus& bus, FabricControllerOptions options = {})
      : bus_(bus), options_(options), backoff_rng_(options.backoff_seed) {}
  /// Convenience constructor preserving the original (bus, max_retries)
  /// call sites.
  FabricController(MessageBus& bus, int max_retries)
      : FabricController(bus, [max_retries] {
          FabricControllerOptions options;
          options.max_retries = max_retries;
          return options;
        }()) {}

  void Register(int ocs_id, OcsAgent* agent);

  /// Applies `targets` (ocs id -> complete cross-connect map)
  /// transactionally: snapshot every touched OCS, apply in id order with
  /// backed-off retries, and on any rejection or retry exhaustion roll the
  /// already-reconfigured OCSes (plus the in-doubt one) back to their
  /// snapshots. The result reports applied / rolled-back / torn explicitly.
  FabricTransactionResult ApplyTopology(const std::map<int, std::map<int, int>>& targets);

  /// Collects telemetry from every registered agent; unreachable agents are
  /// reported in `failed` rather than silently omitted.
  FabricTelemetrySweep CollectTelemetry();

  /// Circuit-breaker state for one agent (kClosed when never registered or
  /// never tripped).
  BreakerState breaker_state(int ocs_id) const;

  const FabricControllerOptions& options() const { return options_; }

  /// Durability hooks (journal snapshots): serializes the controller's
  /// replayable state — transaction/nonce counters and per-agent breaker
  /// health — into `writer`. Options, the agent registry, and telemetry
  /// handles are reconstructed from code/config, not persisted.
  void ExportState(WireWriter& writer) const;
  /// Inverse of ExportState against a fresh controller with the same agents
  /// registered. Fails cleanly on truncated or malformed bytes.
  common::Status ImportState(WireReader& reader);

  /// Starts recording transaction spans (one per ApplyTopology, one child
  /// per OCS fan-out, one per rollback) and latency/retry/rollback metrics
  /// into `hub`.
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  struct AgentHealth {
    BreakerState state = BreakerState::kClosed;
    int consecutive_exhaustions = 0;
    int cooldown_remaining = 0;
  };
  struct Planned {
    int ocs_id = -1;
    OcsAgent* agent = nullptr;
    const std::map<int, int>* target = nullptr;
    std::map<int, int> snapshot;
  };

  /// Simulated backoff before retry `attempt` (>= 1); records into the
  /// backoff histogram. Deterministic given the backoff seed and sequence.
  double NextBackoffUs(int attempt);
  /// One reconfigure exchange with retries + backoff. nullopt = exhausted.
  std::optional<ReconfigureReply> ExchangeReconfigure(OcsAgent& agent,
                                                      const ReconfigureRequest& request,
                                                      FabricTransactionResult* result,
                                                      int* attempts_used);
  /// Reads an OCS's current cross-connect map over the wire (port survey).
  std::optional<std::map<int, int>> SnapshotMapping(OcsAgent& agent,
                                                    FabricTransactionResult* result);
  /// Restores `touched` (in reverse apply order) to their snapshots,
  /// classifying each as rolled_back or torn and setting result->outcome.
  void Rollback(const std::vector<const Planned*>& touched,
                FabricTransactionResult* result);
  void NoteExhaustion(int ocs_id);
  void NoteContact(int ocs_id);
  void UpdateUnhealthyGauge();
  FabricTransactionResult& Fail(FabricTransactionResult& result, std::string error);

  MessageBus& bus_;
  FabricControllerOptions options_;
  common::Rng backoff_rng_;
  std::map<int, OcsAgent*> agents_;
  std::map<int, AgentHealth> health_;
  std::uint64_t next_txn_ = 1;
  std::uint64_t next_nonce_ = 1;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* txn_counter_ = nullptr;
  telemetry::Counter* txn_failure_counter_ = nullptr;
  telemetry::Counter* retry_counter_ = nullptr;
  telemetry::Counter* rollback_counter_ = nullptr;
  telemetry::Counter* torn_counter_ = nullptr;
  telemetry::Counter* breaker_trip_counter_ = nullptr;
  telemetry::Counter* telemetry_failure_counter_ = nullptr;
  telemetry::Gauge* unhealthy_gauge_ = nullptr;
  telemetry::HistogramMetric* txn_duration_hist_ = nullptr;
  telemetry::HistogramMetric* backoff_hist_ = nullptr;
};

}  // namespace lightwave::ctrl
