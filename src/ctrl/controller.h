// OCS device controller and fabric-wide transaction driver. The device agent
// terminates wire-format commands against a PalomarSwitch; the fabric
// controller fans a topology change out to many agents with per-device
// retries and collects the replies. Transport is an in-process message bus
// with injectable loss/corruption so the retry path is testable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ctrl/messages.h"
#include "ocs/palomar.h"

namespace lightwave::telemetry {
class Counter;
class HistogramMetric;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ctrl {

/// The device-side agent: decodes a framed command, executes it against the
/// switch, returns a framed reply.
class OcsAgent {
 public:
  explicit OcsAgent(ocs::PalomarSwitch& ocs) : ocs_(ocs) {}

  /// Returns a framed reply; malformed input yields an empty vector (a real
  /// agent would drop the frame, forcing a client timeout/retry).
  std::vector<std::uint8_t> Handle(const std::vector<std::uint8_t>& frame);

  const ocs::PalomarSwitch& device() const { return ocs_; }

  /// Frames this agent dropped as undecodable. Distinguishes protocol
  /// damage (corruption that survived transport) from transport loss, which
  /// the MessageBus counts separately.
  std::uint64_t malformed_frames() const { return malformed_frames_; }

  /// Starts mirroring the malformed-frame count into `hub` (nullptr
  /// detaches; the default no-op sink).
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  ocs::PalomarSwitch& ocs_;
  std::uint64_t last_applied_txn_ = 0;
  std::uint64_t malformed_frames_ = 0;
  telemetry::Counter* malformed_counter_ = nullptr;
  ReconfigureReply last_reply_;
};

/// Lossy in-process transport between the controller and agents.
class MessageBus {
 public:
  explicit MessageBus(std::uint64_t seed) : rng_(seed) {}

  /// Per-direction drop probability (models management-network loss).
  void SetDropProbability(double p) { drop_probability_ = p; }
  /// Per-direction bit-corruption probability (CRC catches these).
  void SetCorruptProbability(double p) { corrupt_probability_ = p; }

  /// Delivers `frame` to `agent` and returns the reply; empty when either
  /// direction dropped the message.
  std::vector<std::uint8_t> RoundTrip(OcsAgent& agent, std::vector<std::uint8_t> frame);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  /// Mirrors the frame counters into `hub` (nullptr detaches). Handles are
  /// resolved once here, so the per-frame cost is one pointer test.
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  std::vector<std::uint8_t> MaybeMangle(std::vector<std::uint8_t> frame, bool* dropped);

  telemetry::Counter* sent_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Counter* corrupted_counter_ = nullptr;
  common::Rng rng_;
  double drop_probability_ = 0.0;
  double corrupt_probability_ = 0.0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

struct FabricTransactionResult {
  bool ok = false;
  /// Per-OCS replies (keyed by the caller's OCS id).
  std::map<int, ReconfigureReply> replies;
  int retries_used = 0;
  std::string error;
};

/// Client-side controller: drives reconfiguration transactions across a set
/// of agents with bounded retries. Transactions are idempotent on the agent
/// (keyed by transaction id), so a lost reply is safe to retry.
class FabricController {
 public:
  FabricController(MessageBus& bus, int max_retries = 5)
      : bus_(bus), max_retries_(max_retries) {}

  void Register(int ocs_id, OcsAgent* agent);

  /// Applies `targets` (ocs id -> complete cross-connect map). Stops at the
  /// first OCS that *rejects* the change; transport losses are retried.
  FabricTransactionResult ApplyTopology(const std::map<int, std::map<int, int>>& targets);

  /// Collects telemetry from every registered agent (best effort).
  std::map<int, TelemetryReply> CollectTelemetry();

  /// Starts recording transaction spans (one per ApplyTopology, one child
  /// per OCS fan-out) and latency/retry metrics into `hub`.
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  MessageBus& bus_;
  int max_retries_;
  std::map<int, OcsAgent*> agents_;
  std::uint64_t next_txn_ = 1;
  std::uint64_t next_nonce_ = 1;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* txn_counter_ = nullptr;
  telemetry::Counter* txn_failure_counter_ = nullptr;
  telemetry::Counter* retry_counter_ = nullptr;
  telemetry::HistogramMetric* txn_duration_hist_ = nullptr;
};

}  // namespace lightwave::ctrl
