// Deterministic control-plane chaos (the paper's §3.3/§4.5 operational
// failure modes, which the availability story depends on absorbing):
//   - agent fail-stop/restart: the OCS agent process dies mid-conversation
//     and later restarts with its volatile state (idempotency cache) gone;
//   - bus brownout windows: the management network degrades in bursts, so
//     loss is correlated across consecutive frames instead of i.i.d.;
//   - mirror death mid-reconfigure: a MEMS mirror chain under a port of the
//     incoming target fails while the switch is being driven to it, which
//     can leave the switch partially applied (the rollback path's hard case).
// Every decision comes from counter-based common::Rng streams derived from
// one seed, so a chaos run replays bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "common/rng.h"

namespace lightwave::telemetry {
class Counter;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ocs {
class PalomarSwitch;
}  // namespace lightwave::ocs

namespace lightwave::ctrl {

class OcsAgent;

struct FaultProfile {
  /// Per-round-trip probability that an up agent fail-stops.
  double agent_fail_prob = 0.0;
  /// Per-round-trip probability that a down agent restarts (and serves the
  /// round trip that found it back up).
  double agent_restart_prob = 0.0;
  /// Whether a restart loses the agent's volatile idempotency cache (a real
  /// process restart does; the switch hardware keeps its configuration).
  bool restart_loses_state = true;

  /// Per-frame probability that a brownout window opens while the bus is
  /// clear.
  double brownout_start_prob = 0.0;
  /// Per-frame probability that an open window closes (geometric window
  /// length with mean 1/brownout_end_prob frames).
  double brownout_end_prob = 0.25;
  /// Drop probability for frames inside a window (correlated loss).
  double brownout_drop_prob = 0.9;

  /// Per-executed-reconfigure probability that a mirror chain under one of
  /// the target's ports dies mid-transaction.
  double mirror_death_prob = 0.0;
};

/// Where in the journaled command path a simulated process crash lands.
/// The order encodes the durability contract: a crash before the append
/// loses the command but never an acknowledgement (the client resubmits);
/// a crash at or after the append loses only volatile state — recovery must
/// re-apply the journaled command exactly once.
enum class CrashPoint {
  kPreAppend,          // command accepted but not yet journaled
  kPostAppendPreApply, // journaled, nothing applied
  kMidApply,           // journaled, state mutation half done
};
const char* ToString(CrashPoint point);

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultProfile profile);

  /// Bus hook, called once per frame direction: advances the brownout
  /// window state machine and returns true when the frame is eaten.
  bool OnFrame();

  /// Bus hook, called once per round trip: walks the agent's
  /// fail-stop/restart chain and returns false while the agent is down.
  bool AgentUp(OcsAgent& agent);

  /// Agent hook, called before an executed reconfigure: maybe kills a
  /// mirror under one of the target's ports (spares absorb early deaths;
  /// an exhausted pool destroys the port).
  void BeforeReconfigure(ocs::PalomarSwitch& ocs, const std::map<int, int>& target);

  /// Arms a one-shot crash: the `visits`-th future visit to `point` (1 =
  /// the very next one) makes ShouldCrash return true, then disarms. Visits
  /// to other crash points are counted but do not consume the fuse, so a
  /// crash can be dropped on an exact command boundary of a long trace.
  void ArmCrash(CrashPoint point, std::uint64_t visits = 1);
  void DisarmCrash();

  /// Service hook, called at every crash point on the command path. Counts
  /// the visit and returns true exactly when the armed fuse burns out — the
  /// caller then abandons its volatile state, simulating the process dying.
  bool ShouldCrash(CrashPoint point);

  std::uint64_t crashes_fired() const { return crashes_fired_; }
  std::uint64_t crash_point_visits(CrashPoint point) const;

  const FaultProfile& profile() const { return profile_; }
  bool in_brownout() const { return brownout_; }
  std::uint64_t fail_stops() const { return fail_stops_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t brownouts() const { return brownouts_; }
  std::uint64_t brownout_drops() const { return brownout_drops_; }
  std::uint64_t mirror_deaths() const { return mirror_deaths_; }
  std::uint64_t ports_destroyed() const { return ports_destroyed_; }

  /// Mirrors the injected-fault counts into `hub` (nullptr detaches), so a
  /// chaos run's telemetry shows cause (faults) next to effect (rollbacks).
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  FaultProfile profile_;
  common::Rng agent_rng_;
  common::Rng bus_rng_;
  common::Rng mirror_rng_;
  bool brownout_ = false;
  std::map<const OcsAgent*, bool> down_;
  std::uint64_t fail_stops_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t brownouts_ = 0;
  std::uint64_t brownout_drops_ = 0;
  std::uint64_t mirror_deaths_ = 0;
  std::uint64_t ports_destroyed_ = 0;
  std::optional<CrashPoint> armed_crash_point_;
  std::uint64_t armed_crash_visits_ = 0;
  std::uint64_t crashes_fired_ = 0;
  std::array<std::uint64_t, 3> crash_point_visits_{};
  telemetry::Counter* fail_stop_counter_ = nullptr;
  telemetry::Counter* brownout_counter_ = nullptr;
  telemetry::Counter* mirror_death_counter_ = nullptr;
};

}  // namespace lightwave::ctrl
