// Telemetry anomaly detection (§3.2.2): "we invested heavily in improving
// telemetry and anomaly reporting to account for the complexity of the
// hardware ... and the high reliability requirements" — switches with a
// large blast radius must flag degrading optical paths before they take
// traffic down. This detector consumes periodic per-link survey samples
// (insertion loss, pre-FEC BER), tracks an EWMA against the link's
// commissioning baseline, and flags drift, spec violations, and BER
// excursions.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <vector>

namespace lightwave::ctrl {

struct LinkKey {
  int ocs_id = 0;
  int north = 0;
  auto operator<=>(const LinkKey&) const = default;
};

enum class AnomalyKind {
  kLossDrift,     // EWMA drifted above the commissioning baseline
  kLossSpec,      // absolute insertion loss above spec
  kBerThreshold,  // pre-FEC BER above the FEC input limit
};

const char* ToString(AnomalyKind kind);

struct Anomaly {
  LinkKey link;
  AnomalyKind kind = AnomalyKind::kLossDrift;
  double value = 0.0;     // current EWMA (dB) or BER
  double baseline = 0.0;  // commissioning baseline (dB), 0 for BER anomalies
};

struct AnomalyConfig {
  /// Samples averaged to establish the commissioning baseline.
  int baseline_samples = 3;
  double ewma_alpha = 0.3;
  /// Flag when the loss EWMA exceeds baseline by this much.
  double loss_drift_db = 0.5;
  /// Hard insertion-loss spec for any path.
  double absolute_loss_db = 3.5;
  /// Pre-FEC BER limit (the concatenated-FEC channel threshold).
  double ber_limit = 1.2e-3;
};

class AnomalyDetector {
 public:
  AnomalyDetector() : AnomalyDetector(AnomalyConfig{}) {}
  explicit AnomalyDetector(AnomalyConfig config) : config_(config) {}

  const AnomalyConfig& config() const { return config_; }

  /// Feeds one survey sample for a link.
  void Observe(LinkKey link, double insertion_loss_db, double pre_fec_ber);

  /// Links currently anomalous (most severe kind per link).
  std::vector<Anomaly> Flagged() const;
  bool IsFlagged(LinkKey link) const;

  /// Forgets a link's history (after a repair/re-patch the path is new and
  /// must re-baseline).
  void ResetLink(LinkKey link);

  int tracked_links() const { return static_cast<int>(state_.size()); }

 private:
  struct LinkState {
    int samples = 0;
    double baseline_accumulator = 0.0;
    double baseline = 0.0;
    double ewma = 0.0;
    double last_ber = 0.0;
    bool baselined = false;
  };

  AnomalyConfig config_;
  std::map<LinkKey, LinkState> state_;
};

}  // namespace lightwave::ctrl
