#include "ctrl/messages.h"

namespace lightwave::ctrl {
namespace {

std::vector<std::uint8_t> Frame(MessageType type, WireWriter body) {
  WireWriter payload;
  payload.PutU8(static_cast<std::uint8_t>(type));
  const auto& bytes = body.buffer();
  payload.PutBytes(bytes.data(), bytes.size());
  return FrameMessage(payload.Take());
}

/// Opens a frame, checks the type tag, returns a reader past the tag.
std::optional<std::vector<std::uint8_t>> OpenPayload(const std::vector<std::uint8_t>& frame,
                                                     MessageType expected) {
  auto unframed = UnframeMessage(frame);
  if (!unframed) return std::nullopt;
  if (unframed->payload.empty()) return std::nullopt;
  if (unframed->payload[0] != static_cast<std::uint8_t>(expected)) return std::nullopt;
  return std::vector<std::uint8_t>(unframed->payload.begin() + 1, unframed->payload.end());
}

}  // namespace

std::vector<std::uint8_t> Encode(const ReconfigureRequest& msg) {
  WireWriter w;
  w.PutU64(msg.transaction_id);
  w.PutVarint(msg.target.size());
  for (const auto& [n, s] : msg.target) {
    w.PutVarint(static_cast<std::uint64_t>(n));
    w.PutVarint(static_cast<std::uint64_t>(s));
  }
  return Frame(MessageType::kReconfigureRequest, std::move(w));
}

std::vector<std::uint8_t> Encode(const ReconfigureReply& msg) {
  WireWriter w;
  w.PutU64(msg.transaction_id);
  w.PutU8(msg.ok ? 1 : 0);
  w.PutString(msg.error);
  w.PutU32(msg.established);
  w.PutU32(msg.removed);
  w.PutU32(msg.undisturbed);
  w.PutDouble(msg.duration_ms);
  return Frame(MessageType::kReconfigureReply, std::move(w));
}

std::vector<std::uint8_t> Encode(const TelemetryRequest& msg) {
  WireWriter w;
  w.PutU64(msg.nonce);
  return Frame(MessageType::kTelemetryRequest, std::move(w));
}

std::vector<std::uint8_t> Encode(const TelemetryReply& msg) {
  WireWriter w;
  w.PutU64(msg.nonce);
  w.PutU64(msg.connects);
  w.PutU64(msg.disconnects);
  w.PutU64(msg.reconfigurations);
  w.PutU64(msg.rejected_commands);
  w.PutDouble(msg.cumulative_switch_ms);
  w.PutDouble(msg.power_draw_w);
  w.PutU8(msg.chassis_operational ? 1 : 0);
  return Frame(MessageType::kTelemetryReply, std::move(w));
}

std::vector<std::uint8_t> Encode(const PortSurveyRequest& msg) {
  WireWriter w;
  w.PutU64(msg.nonce);
  return Frame(MessageType::kPortSurveyRequest, std::move(w));
}

std::vector<std::uint8_t> Encode(const PortSurveyReply& msg) {
  WireWriter w;
  w.PutU64(msg.nonce);
  w.PutVarint(msg.entries.size());
  for (const auto& e : msg.entries) {
    w.PutVarint(static_cast<std::uint64_t>(e.north));
    w.PutVarint(static_cast<std::uint64_t>(e.south));
    w.PutDouble(e.insertion_loss_db);
    w.PutDouble(e.return_loss_db);
  }
  return Frame(MessageType::kPortSurveyReply, std::move(w));
}

std::optional<MessageType> PeekType(const std::vector<std::uint8_t>& frame) {
  auto unframed = UnframeMessage(frame);
  if (!unframed || unframed->payload.empty()) return std::nullopt;
  const std::uint8_t tag = unframed->payload[0];
  if (tag < 1 || tag > 6) return std::nullopt;
  return static_cast<MessageType>(tag);
}

std::optional<ReconfigureRequest> DecodeReconfigureRequest(
    const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kReconfigureRequest);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  ReconfigureRequest msg;
  auto txn = r.GetU64();
  auto count = r.GetVarint();
  if (!txn || !count) return std::nullopt;
  msg.transaction_id = *txn;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto n = r.GetVarint();
    auto s = r.GetVarint();
    if (!n || !s) return std::nullopt;
    msg.target[static_cast<int>(*n)] = static_cast<int>(*s);
  }
  return msg;
}

std::optional<ReconfigureReply> DecodeReconfigureReply(
    const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kReconfigureReply);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  ReconfigureReply msg;
  auto txn = r.GetU64();
  auto ok = r.GetU8();
  auto error = r.GetString();
  auto established = r.GetU32();
  auto removed = r.GetU32();
  auto undisturbed = r.GetU32();
  auto duration = r.GetDouble();
  if (!txn || !ok || !error || !established || !removed || !undisturbed || !duration) {
    return std::nullopt;
  }
  msg.transaction_id = *txn;
  msg.ok = *ok != 0;
  msg.error = *error;
  msg.established = *established;
  msg.removed = *removed;
  msg.undisturbed = *undisturbed;
  msg.duration_ms = *duration;
  return msg;
}

std::optional<TelemetryRequest> DecodeTelemetryRequest(
    const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kTelemetryRequest);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  auto nonce = r.GetU64();
  if (!nonce) return std::nullopt;
  return TelemetryRequest{.nonce = *nonce};
}

std::optional<TelemetryReply> DecodeTelemetryReply(const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kTelemetryReply);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  TelemetryReply msg;
  auto nonce = r.GetU64();
  auto connects = r.GetU64();
  auto disconnects = r.GetU64();
  auto reconfigs = r.GetU64();
  auto rejected = r.GetU64();
  auto switch_ms = r.GetDouble();
  auto power = r.GetDouble();
  auto operational = r.GetU8();
  if (!nonce || !connects || !disconnects || !reconfigs || !rejected || !switch_ms ||
      !power || !operational) {
    return std::nullopt;
  }
  msg.nonce = *nonce;
  msg.connects = *connects;
  msg.disconnects = *disconnects;
  msg.reconfigurations = *reconfigs;
  msg.rejected_commands = *rejected;
  msg.cumulative_switch_ms = *switch_ms;
  msg.power_draw_w = *power;
  msg.chassis_operational = *operational != 0;
  return msg;
}

std::optional<PortSurveyRequest> DecodePortSurveyRequest(
    const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kPortSurveyRequest);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  auto nonce = r.GetU64();
  if (!nonce) return std::nullopt;
  return PortSurveyRequest{.nonce = *nonce};
}

std::optional<PortSurveyReply> DecodePortSurveyReply(const std::vector<std::uint8_t>& frame) {
  auto payload = OpenPayload(frame, MessageType::kPortSurveyReply);
  if (!payload) return std::nullopt;
  WireReader r(*payload);
  PortSurveyReply msg;
  auto nonce = r.GetU64();
  auto count = r.GetVarint();
  if (!nonce || !count) return std::nullopt;
  msg.nonce = *nonce;
  for (std::uint64_t i = 0; i < *count; ++i) {
    PortSurveyEntry e;
    auto n = r.GetVarint();
    auto s = r.GetVarint();
    auto il = r.GetDouble();
    auto rl = r.GetDouble();
    if (!n || !s || !il || !rl) return std::nullopt;
    e.north = static_cast<int>(*n);
    e.south = static_cast<int>(*s);
    e.insertion_loss_db = *il;
    e.return_loss_db = *rl;
    msg.entries.push_back(e);
  }
  return msg;
}

}  // namespace lightwave::ctrl
