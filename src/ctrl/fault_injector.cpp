#include "ctrl/fault_injector.h"

#include <iterator>

#include "ctrl/controller.h"
#include "ocs/palomar.h"
#include "telemetry/hub.h"

namespace lightwave::ctrl {

namespace {
// Counter-based stream ids: each fault class draws from its own generator so
// enabling one class never perturbs another's decision sequence.
constexpr std::uint64_t kAgentStream = 0;
constexpr std::uint64_t kBusStream = 1;
constexpr std::uint64_t kMirrorStream = 2;
}  // namespace

const char* ToString(CrashPoint point) {
  switch (point) {
    case CrashPoint::kPreAppend: return "pre-append";
    case CrashPoint::kPostAppendPreApply: return "post-append-pre-apply";
    case CrashPoint::kMidApply: return "mid-apply";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultProfile profile)
    : profile_(profile),
      agent_rng_(common::Rng::Stream(seed, kAgentStream)),
      bus_rng_(common::Rng::Stream(seed, kBusStream)),
      mirror_rng_(common::Rng::Stream(seed, kMirrorStream)) {}

void FaultInjector::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    fail_stop_counter_ = brownout_counter_ = mirror_death_counter_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  fail_stop_counter_ = &metrics.GetCounter("lightwave_fault_agent_failstops_total");
  brownout_counter_ = &metrics.GetCounter("lightwave_fault_brownouts_total");
  mirror_death_counter_ = &metrics.GetCounter("lightwave_fault_mirror_deaths_total");
}

void FaultInjector::ArmCrash(CrashPoint point, std::uint64_t visits) {
  armed_crash_point_ = point;
  armed_crash_visits_ = visits == 0 ? 1 : visits;
}

void FaultInjector::DisarmCrash() {
  armed_crash_point_.reset();
  armed_crash_visits_ = 0;
}

bool FaultInjector::ShouldCrash(CrashPoint point) {
  ++crash_point_visits_[static_cast<std::size_t>(point)];
  if (!armed_crash_point_.has_value() || *armed_crash_point_ != point) return false;
  if (--armed_crash_visits_ > 0) return false;
  armed_crash_point_.reset();
  ++crashes_fired_;
  return true;
}

std::uint64_t FaultInjector::crash_point_visits(CrashPoint point) const {
  return crash_point_visits_[static_cast<std::size_t>(point)];
}

bool FaultInjector::OnFrame() {
  if (!brownout_) {
    if (bus_rng_.Bernoulli(profile_.brownout_start_prob)) {
      brownout_ = true;
      ++brownouts_;
      if (brownout_counter_ != nullptr) brownout_counter_->Inc();
    }
  } else if (bus_rng_.Bernoulli(profile_.brownout_end_prob)) {
    brownout_ = false;
  }
  if (brownout_ && bus_rng_.Bernoulli(profile_.brownout_drop_prob)) {
    ++brownout_drops_;
    return true;
  }
  return false;
}

bool FaultInjector::AgentUp(OcsAgent& agent) {
  bool& down = down_[&agent];
  if (down) {
    if (!agent_rng_.Bernoulli(profile_.agent_restart_prob)) return false;
    down = false;
    ++restarts_;
    if (profile_.restart_loses_state) agent.SimulateRestart();
    return true;  // restarted in time to serve this round trip
  }
  if (agent_rng_.Bernoulli(profile_.agent_fail_prob)) {
    down = true;
    ++fail_stops_;
    if (fail_stop_counter_ != nullptr) fail_stop_counter_->Inc();
    return false;
  }
  return true;
}

void FaultInjector::BeforeReconfigure(ocs::PalomarSwitch& ocs,
                                      const std::map<int, int>& target) {
  if (target.empty() || !mirror_rng_.Bernoulli(profile_.mirror_death_prob)) return;
  // The victim mirror sits under one of the ports the incoming target is
  // about to drive — the death lands mid-reconfigure from the control
  // plane's point of view.
  const auto index = mirror_rng_.UniformInt(target.size());
  const auto it = std::next(target.begin(), static_cast<std::ptrdiff_t>(index));
  const bool north_side = mirror_rng_.Bernoulli(0.5);
  const int port = north_side ? it->first : it->second;
  ++mirror_deaths_;
  if (mirror_death_counter_ != nullptr) mirror_death_counter_->Inc();
  if (!ocs.InjectMirrorFailure(north_side, port)) ++ports_destroyed_;
}

}  // namespace lightwave::ctrl
