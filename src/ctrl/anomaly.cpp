#include "ctrl/anomaly.h"

namespace lightwave::ctrl {

const char* ToString(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLossDrift: return "loss-drift";
    case AnomalyKind::kLossSpec: return "loss-spec";
    case AnomalyKind::kBerThreshold: return "ber-threshold";
  }
  return "?";
}

void AnomalyDetector::Observe(LinkKey link, double insertion_loss_db, double pre_fec_ber) {
  LinkState& s = state_[link];
  s.last_ber = pre_fec_ber;
  if (!s.baselined) {
    s.baseline_accumulator += insertion_loss_db;
    ++s.samples;
    s.ewma = insertion_loss_db;
    if (s.samples >= config_.baseline_samples) {
      s.baseline = s.baseline_accumulator / s.samples;
      s.baselined = true;
    }
    return;
  }
  s.ewma = config_.ewma_alpha * insertion_loss_db + (1.0 - config_.ewma_alpha) * s.ewma;
}

std::vector<Anomaly> AnomalyDetector::Flagged() const {
  std::vector<Anomaly> out;
  for (const auto& [link, s] : state_) {
    // Severity order: BER first (traffic is failing), then spec, then drift.
    if (s.last_ber > config_.ber_limit) {
      out.push_back(Anomaly{link, AnomalyKind::kBerThreshold, s.last_ber, 0.0});
    } else if (s.ewma > config_.absolute_loss_db) {
      out.push_back(Anomaly{link, AnomalyKind::kLossSpec, s.ewma, s.baseline});
    } else if (s.baselined && s.ewma - s.baseline > config_.loss_drift_db) {
      out.push_back(Anomaly{link, AnomalyKind::kLossDrift, s.ewma, s.baseline});
    }
  }
  return out;
}

bool AnomalyDetector::IsFlagged(LinkKey link) const {
  for (const auto& a : Flagged()) {
    if (a.link == link) return true;
  }
  return false;
}

void AnomalyDetector::ResetLink(LinkKey link) { state_.erase(link); }

}  // namespace lightwave::ctrl
