// Binary wire format for the control plane. Little-endian fixed-width
// integers plus LEB128 varints, length-prefixed strings, and a frame
// envelope carrying a protocol version and a CRC32 so corrupt or
// version-skewed frames are rejected before decode. The OCSes share the
// management-plane stack with the EPS fleet (§3.2.2); this module is that
// stack's serialization layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lightwave::ctrl {

inline constexpr std::uint16_t kProtocolVersion = 3;
/// Oldest peer version this implementation still decodes.
inline constexpr std::uint16_t kMinSupportedVersion = 2;

class WireWriter {
 public:
  void PutU8(std::uint8_t v);
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutVarint(std::uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutBytes(const std::uint8_t* data, std::size_t size);

  /// Adopt `buffer` as the output, clearing its contents but keeping its
  /// capacity — hot encode loops round-trip one buffer through Reset/Take
  /// instead of allocating per message.
  void Reset(std::vector<std::uint8_t> buffer) {
    buffer_ = std::move(buffer);
    buffer_.clear();
  }
  void Reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& data) : data_(data) {}

  std::optional<std::uint8_t> GetU8();
  std::optional<std::uint16_t> GetU16();
  std::optional<std::uint32_t> GetU32();
  std::optional<std::uint64_t> GetU64();
  std::optional<std::uint64_t> GetVarint();
  std::optional<double> GetDouble();
  std::optional<std::string> GetString();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial, table-driven).
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

/// Wraps a payload in [version u16][length u32][payload][crc32 u32].
std::vector<std::uint8_t> FrameMessage(const std::vector<std::uint8_t>& payload,
                                       std::uint16_t version = kProtocolVersion);

struct UnframedMessage {
  std::uint16_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Validates and strips the envelope; nullopt on truncation, bad CRC, or a
/// version below kMinSupportedVersion.
std::optional<UnframedMessage> UnframeMessage(const std::vector<std::uint8_t>& frame);

}  // namespace lightwave::ctrl
