#include "ctrl/controller.h"

#include <cassert>

#include "telemetry/hub.h"

namespace lightwave::ctrl {

void OcsAgent::AttachTelemetry(telemetry::Hub* hub) {
  malformed_counter_ =
      hub == nullptr
          ? nullptr
          : &hub->metrics().GetCounter("lightwave_ctrl_agent_malformed_frames_total");
}

std::vector<std::uint8_t> OcsAgent::Handle(const std::vector<std::uint8_t>& frame) {
  // A real agent silently drops undecodable frames and lets the client time
  // out; counting them keeps protocol damage distinguishable from transport
  // loss in tests and in the exported metrics.
  auto drop_malformed = [this]() -> std::vector<std::uint8_t> {
    ++malformed_frames_;
    if (malformed_counter_ != nullptr) malformed_counter_->Inc();
    return {};
  };
  const auto type = PeekType(frame);
  if (!type) return drop_malformed();
  switch (*type) {
    case MessageType::kReconfigureRequest: {
      auto request = DecodeReconfigureRequest(frame);
      if (!request) return drop_malformed();
      // Idempotency: a retried transaction returns the recorded reply
      // instead of re-executing (re-execution would be harmless here but
      // would double-count telemetry).
      if (request->transaction_id == last_applied_txn_) {
        return Encode(last_reply_);
      }
      ReconfigureReply reply;
      reply.transaction_id = request->transaction_id;
      auto report = ocs_.Reconfigure(request->target);
      if (report.ok()) {
        reply.ok = true;
        reply.established = static_cast<std::uint32_t>(report.value().established.size());
        reply.removed = static_cast<std::uint32_t>(report.value().removed.size());
        reply.undisturbed = static_cast<std::uint32_t>(report.value().undisturbed.size());
        reply.duration_ms = report.value().duration_ms;
      } else {
        reply.ok = false;
        reply.error = report.error().message;
      }
      last_applied_txn_ = request->transaction_id;
      last_reply_ = reply;
      return Encode(reply);
    }
    case MessageType::kTelemetryRequest: {
      auto request = DecodeTelemetryRequest(frame);
      if (!request) return drop_malformed();
      const auto& t = ocs_.telemetry();
      return Encode(TelemetryReply{
          .nonce = request->nonce,
          .connects = t.connects,
          .disconnects = t.disconnects,
          .reconfigurations = t.reconfigurations,
          .rejected_commands = t.rejected_commands,
          .cumulative_switch_ms = t.cumulative_switch_ms,
          .power_draw_w = ocs_.chassis().PowerDrawWatts(),
          .chassis_operational = ocs_.chassis().Operational(),
      });
    }
    case MessageType::kPortSurveyRequest: {
      auto request = DecodePortSurveyRequest(frame);
      if (!request) return drop_malformed();
      PortSurveyReply reply;
      reply.nonce = request->nonce;
      for (const auto& conn : ocs_.SurveyConnections()) {
        reply.entries.push_back(PortSurveyEntry{
            .north = conn.north,
            .south = conn.south,
            .insertion_loss_db = conn.insertion_loss.value(),
            .return_loss_db = conn.return_loss.value(),
        });
      }
      return Encode(reply);
    }
    default:
      return drop_malformed();  // replies are not valid requests
  }
}

void MessageBus::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    sent_counter_ = dropped_counter_ = corrupted_counter_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  sent_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_sent_total");
  dropped_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_dropped_total");
  corrupted_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_corrupted_total");
}

std::vector<std::uint8_t> MessageBus::MaybeMangle(std::vector<std::uint8_t> frame,
                                                  bool* dropped) {
  *dropped = false;
  ++frames_sent_;
  if (sent_counter_ != nullptr) sent_counter_->Inc();
  if (rng_.Bernoulli(drop_probability_)) {
    ++frames_dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    *dropped = true;
    return {};
  }
  if (!frame.empty() && rng_.Bernoulli(corrupt_probability_)) {
    ++frames_corrupted_;
    if (corrupted_counter_ != nullptr) corrupted_counter_->Inc();
    const std::size_t byte = static_cast<std::size_t>(rng_.UniformInt(frame.size()));
    frame[byte] ^= static_cast<std::uint8_t>(1u << rng_.UniformInt(8));
  }
  return frame;
}

std::vector<std::uint8_t> MessageBus::RoundTrip(OcsAgent& agent,
                                                std::vector<std::uint8_t> frame) {
  bool dropped = false;
  auto delivered = MaybeMangle(std::move(frame), &dropped);
  if (dropped) return {};
  auto reply = agent.Handle(delivered);
  if (reply.empty()) return {};  // agent dropped a mangled frame
  auto returned = MaybeMangle(std::move(reply), &dropped);
  if (dropped) return {};
  return returned;
}

void FabricController::Register(int ocs_id, OcsAgent* agent) {
  assert(agent != nullptr);
  agents_[ocs_id] = agent;
}

void FabricController::AttachTelemetry(telemetry::Hub* hub) {
  hub_ = hub;
  if (hub == nullptr) {
    txn_counter_ = txn_failure_counter_ = retry_counter_ = nullptr;
    txn_duration_hist_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  txn_counter_ = &metrics.GetCounter("lightwave_ctrl_transactions_total");
  txn_failure_counter_ = &metrics.GetCounter("lightwave_ctrl_transaction_failures_total");
  retry_counter_ = &metrics.GetCounter("lightwave_ctrl_retries_total");
  txn_duration_hist_ = &metrics.GetHistogram("lightwave_ctrl_transaction_duration_ms");
}

FabricTransactionResult FabricController::ApplyTopology(
    const std::map<int, std::map<int, int>>& targets) {
  telemetry::TraceSpan txn_span(hub_, "apply_topology");
  if (hub_ != nullptr) txn_span.Annotate("ocs_count", std::to_string(targets.size()));
  if (txn_counter_ != nullptr) txn_counter_->Inc();
  FabricTransactionResult result;
  for (const auto& [ocs_id, target] : targets) {
    telemetry::TraceSpan ocs_span(hub_, "reconfigure_ocs");
    if (hub_ != nullptr) ocs_span.Annotate("ocs", std::to_string(ocs_id));
    auto it = agents_.find(ocs_id);
    if (it == agents_.end()) {
      result.error = "no agent registered for ocs " + std::to_string(ocs_id);
      if (txn_failure_counter_ != nullptr) txn_failure_counter_->Inc();
      return result;
    }
    const ReconfigureRequest request{.transaction_id = next_txn_++, .target = target};
    bool delivered = false;
    int attempts_used = 0;
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      attempts_used = attempt + 1;
      if (attempt > 0) {
        ++result.retries_used;
        if (retry_counter_ != nullptr) retry_counter_->Inc();
      }
      auto reply_frame = bus_.RoundTrip(*it->second, Encode(request));
      if (reply_frame.empty()) continue;  // lost either direction; retry
      auto reply = DecodeReconfigureReply(reply_frame);
      if (!reply || reply->transaction_id != request.transaction_id) continue;
      result.replies[ocs_id] = *reply;
      if (!reply->ok) {
        result.error = "ocs " + std::to_string(ocs_id) + ": " + reply->error;
        if (txn_failure_counter_ != nullptr) txn_failure_counter_->Inc();
        return result;
      }
      // The duration lands in the latency histogram; annotating every span
      // with it too would double the hot-path tracer cost for no new data.
      if (txn_duration_hist_ != nullptr) txn_duration_hist_->Observe(reply->duration_ms);
      delivered = true;
      break;
    }
    // Retries are the anomaly worth reading off a trace; the clean case
    // stays annotation-free to keep the instrumented path cheap.
    if (hub_ != nullptr && attempts_used > 1) {
      ocs_span.Annotate("attempts", std::to_string(attempts_used));
    }
    if (!delivered) {
      result.error = "ocs " + std::to_string(ocs_id) + ": transport exhausted retries";
      if (txn_failure_counter_ != nullptr) txn_failure_counter_->Inc();
      return result;
    }
  }
  result.ok = true;
  txn_span.Annotate("ok", "true");
  return result;
}

std::map<int, TelemetryReply> FabricController::CollectTelemetry() {
  std::map<int, TelemetryReply> out;
  for (auto& [ocs_id, agent] : agents_) {
    const TelemetryRequest request{.nonce = next_nonce_++};
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      auto reply_frame = bus_.RoundTrip(*agent, Encode(request));
      if (reply_frame.empty()) continue;
      auto reply = DecodeTelemetryReply(reply_frame);
      if (!reply || reply->nonce != request.nonce) continue;
      out[ocs_id] = *reply;
      break;
    }
  }
  return out;
}

}  // namespace lightwave::ctrl
