#include "ctrl/controller.h"

#include <algorithm>
#include <cassert>

#include "ctrl/fault_injector.h"
#include "telemetry/hub.h"

namespace lightwave::ctrl {

const char* ToString(FabricTxnOutcome outcome) {
  switch (outcome) {
    case FabricTxnOutcome::kApplied: return "applied";
    case FabricTxnOutcome::kRolledBack: return "rolled_back";
    case FabricTxnOutcome::kTorn: return "torn";
  }
  return "?";
}

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void OcsAgent::AttachTelemetry(telemetry::Hub* hub) {
  malformed_counter_ =
      hub == nullptr
          ? nullptr
          : &hub->metrics().GetCounter("lightwave_ctrl_agent_malformed_frames_total");
}

void OcsAgent::SimulateRestart() {
  last_applied_txn_.reset();
  last_reply_ = ReconfigureReply{};
}

std::vector<std::uint8_t> OcsAgent::Handle(const std::vector<std::uint8_t>& frame) {
  // A real agent silently drops undecodable frames and lets the client time
  // out; counting them keeps protocol damage distinguishable from transport
  // loss in tests and in the exported metrics.
  auto drop_malformed = [this]() -> std::vector<std::uint8_t> {
    ++malformed_frames_;
    if (malformed_counter_ != nullptr) malformed_counter_->Inc();
    return {};
  };
  const auto type = PeekType(frame);
  if (!type) return drop_malformed();
  switch (*type) {
    case MessageType::kReconfigureRequest: {
      auto request = DecodeReconfigureRequest(frame);
      if (!request) return drop_malformed();
      // Idempotency: a retried transaction returns the recorded reply
      // instead of re-executing (re-execution would be harmless here but
      // would double-count telemetry).
      if (last_applied_txn_.has_value() &&
          *last_applied_txn_ == request->transaction_id) {
        return Encode(last_reply_);
      }
      if (fault_injector_ != nullptr) {
        fault_injector_->BeforeReconfigure(ocs_, request->target);
      }
      ReconfigureReply reply;
      reply.transaction_id = request->transaction_id;
      auto report = ocs_.Reconfigure(request->target);
      if (report.ok()) {
        reply.ok = true;
        reply.established = static_cast<std::uint32_t>(report.value().established.size());
        reply.removed = static_cast<std::uint32_t>(report.value().removed.size());
        reply.undisturbed = static_cast<std::uint32_t>(report.value().undisturbed.size());
        reply.duration_ms = report.value().duration_ms;
      } else {
        reply.ok = false;
        reply.error = report.error().message;
      }
      last_applied_txn_ = request->transaction_id;
      last_reply_ = reply;
      return Encode(reply);
    }
    case MessageType::kTelemetryRequest: {
      auto request = DecodeTelemetryRequest(frame);
      if (!request) return drop_malformed();
      const auto& t = ocs_.telemetry();
      return Encode(TelemetryReply{
          .nonce = request->nonce,
          .connects = t.connects,
          .disconnects = t.disconnects,
          .reconfigurations = t.reconfigurations,
          .rejected_commands = t.rejected_commands,
          .cumulative_switch_ms = t.cumulative_switch_ms,
          .power_draw_w = ocs_.chassis().PowerDrawWatts(),
          .chassis_operational = ocs_.chassis().Operational(),
      });
    }
    case MessageType::kPortSurveyRequest: {
      auto request = DecodePortSurveyRequest(frame);
      if (!request) return drop_malformed();
      PortSurveyReply reply;
      reply.nonce = request->nonce;
      for (const auto& conn : ocs_.SurveyConnections()) {
        reply.entries.push_back(PortSurveyEntry{
            .north = conn.north,
            .south = conn.south,
            .insertion_loss_db = conn.insertion_loss.value(),
            .return_loss_db = conn.return_loss.value(),
        });
      }
      return Encode(reply);
    }
    default:
      return drop_malformed();  // replies are not valid requests
  }
}

void MessageBus::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    sent_counter_ = dropped_counter_ = corrupted_counter_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  sent_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_sent_total");
  dropped_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_dropped_total");
  corrupted_counter_ = &metrics.GetCounter("lightwave_ctrl_frames_corrupted_total");
}

std::vector<std::uint8_t> MessageBus::MaybeMangle(std::vector<std::uint8_t> frame,
                                                  bool* dropped) {
  *dropped = false;
  ++frames_sent_;
  if (sent_counter_ != nullptr) sent_counter_->Inc();
  // Loss sources, most-correlated first: a hard partition, a brownout window
  // (the injector models bursts, not i.i.d. flips), then the classic
  // independent per-frame loss.
  bool eaten = false;
  if (partition_after_.has_value()) {
    if (*partition_after_ == 0) {
      eaten = true;
    } else {
      --*partition_after_;
    }
  }
  if (!eaten && fault_injector_ != nullptr && fault_injector_->OnFrame()) eaten = true;
  if (!eaten && rng_.Bernoulli(drop_probability_)) eaten = true;
  if (eaten) {
    ++frames_dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    *dropped = true;
    return {};
  }
  if (!frame.empty() && rng_.Bernoulli(corrupt_probability_)) {
    ++frames_corrupted_;
    if (corrupted_counter_ != nullptr) corrupted_counter_->Inc();
    const std::size_t byte = static_cast<std::size_t>(rng_.UniformInt(frame.size()));
    frame[byte] ^= static_cast<std::uint8_t>(1u << rng_.UniformInt(8));
  }
  return frame;
}

std::vector<std::uint8_t> MessageBus::RoundTrip(OcsAgent& agent,
                                                std::vector<std::uint8_t> frame) {
  bool dropped = false;
  auto delivered = MaybeMangle(std::move(frame), &dropped);
  if (dropped) return {};
  if (fault_injector_ != nullptr && !fault_injector_->AgentUp(agent)) {
    // The frame reached a fail-stopped agent process: it vanishes exactly
    // like transport loss from the controller's point of view.
    ++frames_dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    return {};
  }
  auto reply = agent.Handle(delivered);
  if (reply.empty()) return {};  // agent dropped a mangled frame
  auto returned = MaybeMangle(std::move(reply), &dropped);
  if (dropped) return {};
  return returned;
}

void FabricController::Register(int ocs_id, OcsAgent* agent) {
  assert(agent != nullptr);
  agents_[ocs_id] = agent;
}

void FabricController::AttachTelemetry(telemetry::Hub* hub) {
  hub_ = hub;
  if (hub == nullptr) {
    txn_counter_ = txn_failure_counter_ = retry_counter_ = nullptr;
    rollback_counter_ = torn_counter_ = breaker_trip_counter_ = nullptr;
    telemetry_failure_counter_ = nullptr;
    unhealthy_gauge_ = nullptr;
    txn_duration_hist_ = backoff_hist_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  txn_counter_ = &metrics.GetCounter("lightwave_ctrl_transactions_total");
  txn_failure_counter_ = &metrics.GetCounter("lightwave_ctrl_transaction_failures_total");
  retry_counter_ = &metrics.GetCounter("lightwave_ctrl_retries_total");
  rollback_counter_ = &metrics.GetCounter("lightwave_ctrl_rollbacks_total");
  torn_counter_ = &metrics.GetCounter("lightwave_ctrl_torn_transactions_total");
  breaker_trip_counter_ = &metrics.GetCounter("lightwave_ctrl_breaker_trips_total");
  telemetry_failure_counter_ =
      &metrics.GetCounter("lightwave_ctrl_telemetry_failures_total");
  unhealthy_gauge_ = &metrics.GetGauge("lightwave_ctrl_agent_unhealthy");
  txn_duration_hist_ = &metrics.GetHistogram("lightwave_ctrl_transaction_duration_ms");
  backoff_hist_ = &metrics.GetHistogram("lightwave_ctrl_backoff_delay_us");
}

double FabricController::NextBackoffUs(int attempt) {
  const BackoffPolicy& policy = options_.backoff;
  double delay = policy.base_us;
  for (int i = 1; i < attempt && delay < policy.max_us; ++i) delay *= policy.multiplier;
  delay = std::min(delay, policy.max_us);
  if (policy.jitter > 0.0) {
    delay *= backoff_rng_.Uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  if (backoff_hist_ != nullptr) backoff_hist_->Observe(delay);
  return delay;
}

std::optional<ReconfigureReply> FabricController::ExchangeReconfigure(
    OcsAgent& agent, const ReconfigureRequest& request, FabricTransactionResult* result,
    int* attempts_used) {
  const auto frame = Encode(request);
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++result->retries_used;
      if (retry_counter_ != nullptr) retry_counter_->Inc();
      result->backoff_us += NextBackoffUs(attempt);
    }
    auto reply_frame = bus_.RoundTrip(agent, frame);
    if (reply_frame.empty()) continue;  // lost either direction; retry
    auto reply = DecodeReconfigureReply(reply_frame);
    if (!reply || reply->transaction_id != request.transaction_id) continue;
    if (attempts_used != nullptr) *attempts_used = attempt + 1;
    return reply;
  }
  if (attempts_used != nullptr) *attempts_used = options_.max_retries + 1;
  return std::nullopt;
}

std::optional<std::map<int, int>> FabricController::SnapshotMapping(
    OcsAgent& agent, FabricTransactionResult* result) {
  const PortSurveyRequest request{.nonce = next_nonce_++};
  const auto frame = Encode(request);
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++result->retries_used;
      if (retry_counter_ != nullptr) retry_counter_->Inc();
      result->backoff_us += NextBackoffUs(attempt);
    }
    auto reply_frame = bus_.RoundTrip(agent, frame);
    if (reply_frame.empty()) continue;
    auto reply = DecodePortSurveyReply(reply_frame);
    if (!reply || reply->nonce != request.nonce) continue;
    std::map<int, int> snapshot;
    for (const auto& entry : reply->entries) snapshot[entry.north] = entry.south;
    return snapshot;
  }
  return std::nullopt;
}

void FabricController::UpdateUnhealthyGauge() {
  if (unhealthy_gauge_ == nullptr) return;
  int open = 0;
  for (const auto& [id, health] : health_) {
    if (health.state != BreakerState::kClosed) ++open;
  }
  unhealthy_gauge_->Set(static_cast<double>(open));
}

void FabricController::NoteExhaustion(int ocs_id) {
  AgentHealth& health = health_[ocs_id];
  ++health.consecutive_exhaustions;
  if (health.state == BreakerState::kHalfOpen ||
      health.consecutive_exhaustions >= options_.breaker_threshold) {
    if (health.state != BreakerState::kOpen && breaker_trip_counter_ != nullptr) {
      breaker_trip_counter_->Inc();
    }
    health.state = BreakerState::kOpen;
    health.cooldown_remaining = options_.breaker_cooldown;
    UpdateUnhealthyGauge();
  }
}

void FabricController::NoteContact(int ocs_id) {
  AgentHealth& health = health_[ocs_id];
  health.consecutive_exhaustions = 0;
  if (health.state != BreakerState::kClosed) {
    health.state = BreakerState::kClosed;
    health.cooldown_remaining = 0;
    UpdateUnhealthyGauge();
  }
}

BreakerState FabricController::breaker_state(int ocs_id) const {
  auto it = health_.find(ocs_id);
  return it == health_.end() ? BreakerState::kClosed : it->second.state;
}

void FabricController::ExportState(WireWriter& writer) const {
  writer.PutU64(next_txn_);
  writer.PutU64(next_nonce_);
  writer.PutVarint(health_.size());
  for (const auto& [ocs_id, health] : health_) {
    writer.PutVarint(static_cast<std::uint64_t>(ocs_id));
    writer.PutU8(static_cast<std::uint8_t>(health.state));
    writer.PutVarint(static_cast<std::uint64_t>(health.consecutive_exhaustions));
    writer.PutVarint(static_cast<std::uint64_t>(health.cooldown_remaining));
  }
}

common::Status FabricController::ImportState(WireReader& reader) {
  auto next_txn = reader.GetU64();
  auto next_nonce = reader.GetU64();
  auto health_count = reader.GetVarint();
  if (!next_txn || !next_nonce || !health_count) {
    return common::Internal("controller state truncated");
  }
  std::map<int, AgentHealth> health;
  for (std::uint64_t i = 0; i < *health_count; ++i) {
    auto ocs_id = reader.GetVarint();
    auto state = reader.GetU8();
    auto exhaustions = reader.GetVarint();
    auto cooldown = reader.GetVarint();
    if (!ocs_id || !state || !exhaustions || !cooldown) {
      return common::Internal("controller health entry truncated");
    }
    if (*state > static_cast<std::uint8_t>(BreakerState::kHalfOpen)) {
      return common::Internal("controller state carries unknown breaker state " +
                              std::to_string(*state));
    }
    health[static_cast<int>(*ocs_id)] =
        AgentHealth{.state = static_cast<BreakerState>(*state),
                    .consecutive_exhaustions = static_cast<int>(*exhaustions),
                    .cooldown_remaining = static_cast<int>(*cooldown)};
  }
  next_txn_ = *next_txn;
  next_nonce_ = *next_nonce;
  health_ = std::move(health);
  UpdateUnhealthyGauge();
  return common::Status::Ok();
}

FabricTransactionResult& FabricController::Fail(FabricTransactionResult& result,
                                                std::string error) {
  result.ok = false;
  result.error = std::move(error);
  if (txn_failure_counter_ != nullptr) txn_failure_counter_->Inc();
  return result;
}

void FabricController::Rollback(const std::vector<const Planned*>& touched,
                                FabricTransactionResult* result) {
  if (touched.empty()) {
    result->outcome = FabricTxnOutcome::kRolledBack;
    return;
  }
  if (rollback_counter_ != nullptr) rollback_counter_->Inc();
  telemetry::TraceSpan span(hub_, "rollback_topology");
  if (hub_ != nullptr) span.Annotate("ocs_count", std::to_string(touched.size()));
  // Reverse apply order, so the fabric unwinds the way it wound up.
  for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
    const Planned& p = **it;
    const ReconfigureRequest request{.transaction_id = next_txn_++, .target = p.snapshot};
    auto reply = ExchangeReconfigure(*p.agent, request, result, nullptr);
    if (reply.has_value() && reply->ok) {
      result->rolled_back.push_back(p.ocs_id);
    } else {
      if (!reply.has_value()) NoteExhaustion(p.ocs_id);
      result->torn.push_back(p.ocs_id);
    }
  }
  std::sort(result->rolled_back.begin(), result->rolled_back.end());
  std::sort(result->torn.begin(), result->torn.end());
  result->outcome =
      result->torn.empty() ? FabricTxnOutcome::kRolledBack : FabricTxnOutcome::kTorn;
  if (!result->torn.empty() && torn_counter_ != nullptr) torn_counter_->Inc();
}

FabricTransactionResult FabricController::ApplyTopology(
    const std::map<int, std::map<int, int>>& targets) {
  telemetry::TraceSpan txn_span(hub_, "apply_topology");
  if (hub_ != nullptr) txn_span.Annotate("ocs_count", std::to_string(targets.size()));
  if (txn_counter_ != nullptr) txn_counter_->Inc();
  FabricTransactionResult result;

  // --- plan: resolve agents, gate on circuit breakers, snapshot every
  // touched OCS before mutating anything -------------------------------------
  std::vector<Planned> plan;
  plan.reserve(targets.size());
  for (const auto& [ocs_id, target] : targets) {
    auto it = agents_.find(ocs_id);
    if (it == agents_.end()) {
      return Fail(result, "no agent registered for ocs " + std::to_string(ocs_id));
    }
    AgentHealth& health = health_[ocs_id];
    if (health.state == BreakerState::kOpen) {
      // Fail fast instead of burning the retry budget against a dead agent;
      // after the cooldown the next transaction probes it (half-open).
      if (--health.cooldown_remaining <= 0) health.state = BreakerState::kHalfOpen;
      return Fail(result, "ocs " + std::to_string(ocs_id) +
                              ": circuit breaker open; agent skipped");
    }
    auto snapshot = SnapshotMapping(*it->second, &result);
    if (!snapshot.has_value()) {
      NoteExhaustion(ocs_id);
      return Fail(result, "ocs " + std::to_string(ocs_id) +
                              ": snapshot survey exhausted retries");
    }
    plan.push_back(Planned{ocs_id, it->second, &target, *std::move(snapshot)});
  }

  // --- apply in id order; the first failure rolls back everything already
  // touched (including the in-doubt OCS itself) -------------------------------
  std::vector<const Planned*> touched;
  for (const Planned& p : plan) {
    telemetry::TraceSpan ocs_span(hub_, "reconfigure_ocs");
    if (hub_ != nullptr) ocs_span.Annotate("ocs", std::to_string(p.ocs_id));
    const ReconfigureRequest request{.transaction_id = next_txn_++, .target = *p.target};
    int attempts_used = 0;
    auto reply = ExchangeReconfigure(*p.agent, request, &result, &attempts_used);
    // Retries are the anomaly worth reading off a trace; the clean case
    // stays annotation-free to keep the instrumented path cheap.
    if (hub_ != nullptr && attempts_used > 1) {
      ocs_span.Annotate("attempts", std::to_string(attempts_used));
    }
    if (!reply.has_value()) {
      // Transport exhausted. The command may have landed with every reply
      // lost, so this OCS is in doubt: roll it back along with its
      // predecessors (restoring an untouched switch is a no-op reconfigure).
      NoteExhaustion(p.ocs_id);
      touched.push_back(&p);
      Rollback(touched, &result);
      return Fail(result, "ocs " + std::to_string(p.ocs_id) +
                              ": transport exhausted retries");
    }
    NoteContact(p.ocs_id);
    result.replies[p.ocs_id] = *reply;
    if (!reply->ok) {
      // The switch rejected the target — or, after a mid-reconfigure mirror
      // death, applied it partially. Either way it must be restored too.
      touched.push_back(&p);
      Rollback(touched, &result);
      return Fail(result, "ocs " + std::to_string(p.ocs_id) + ": " + reply->error);
    }
    // The duration lands in the latency histogram; annotating every span
    // with it too would double the hot-path tracer cost for no new data.
    if (txn_duration_hist_ != nullptr) txn_duration_hist_->Observe(reply->duration_ms);
    touched.push_back(&p);
  }
  result.ok = true;
  result.outcome = FabricTxnOutcome::kApplied;
  txn_span.Annotate("ok", "true");
  return result;
}

FabricTelemetrySweep FabricController::CollectTelemetry() {
  FabricTelemetrySweep sweep;
  for (auto& [ocs_id, agent] : agents_) {
    const TelemetryRequest request{.nonce = next_nonce_++};
    const auto frame = Encode(request);
    bool answered = false;
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) (void)NextBackoffUs(attempt);
      auto reply_frame = bus_.RoundTrip(*agent, frame);
      if (reply_frame.empty()) continue;
      auto reply = DecodeTelemetryReply(reply_frame);
      if (!reply || reply->nonce != request.nonce) continue;
      sweep.replies[ocs_id] = *reply;
      answered = true;
      break;
    }
    if (!answered) {
      sweep.failed[ocs_id] = "telemetry sweep exhausted " +
                             std::to_string(options_.max_retries + 1) + " attempts";
      if (telemetry_failure_counter_ != nullptr) telemetry_failure_counter_->Inc();
    }
  }
  return sweep;
}

}  // namespace lightwave::ctrl
