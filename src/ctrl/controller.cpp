#include "ctrl/controller.h"

#include <cassert>

namespace lightwave::ctrl {

std::vector<std::uint8_t> OcsAgent::Handle(const std::vector<std::uint8_t>& frame) {
  const auto type = PeekType(frame);
  if (!type) return {};
  switch (*type) {
    case MessageType::kReconfigureRequest: {
      auto request = DecodeReconfigureRequest(frame);
      if (!request) return {};
      // Idempotency: a retried transaction returns the recorded reply
      // instead of re-executing (re-execution would be harmless here but
      // would double-count telemetry).
      if (request->transaction_id == last_applied_txn_) {
        return Encode(last_reply_);
      }
      ReconfigureReply reply;
      reply.transaction_id = request->transaction_id;
      auto report = ocs_.Reconfigure(request->target);
      if (report.ok()) {
        reply.ok = true;
        reply.established = static_cast<std::uint32_t>(report.value().established.size());
        reply.removed = static_cast<std::uint32_t>(report.value().removed.size());
        reply.undisturbed = static_cast<std::uint32_t>(report.value().undisturbed.size());
        reply.duration_ms = report.value().duration_ms;
      } else {
        reply.ok = false;
        reply.error = report.error().message;
      }
      last_applied_txn_ = request->transaction_id;
      last_reply_ = reply;
      return Encode(reply);
    }
    case MessageType::kTelemetryRequest: {
      auto request = DecodeTelemetryRequest(frame);
      if (!request) return {};
      const auto& t = ocs_.telemetry();
      return Encode(TelemetryReply{
          .nonce = request->nonce,
          .connects = t.connects,
          .disconnects = t.disconnects,
          .reconfigurations = t.reconfigurations,
          .rejected_commands = t.rejected_commands,
          .cumulative_switch_ms = t.cumulative_switch_ms,
          .power_draw_w = ocs_.chassis().PowerDrawWatts(),
          .chassis_operational = ocs_.chassis().Operational(),
      });
    }
    case MessageType::kPortSurveyRequest: {
      auto request = DecodePortSurveyRequest(frame);
      if (!request) return {};
      PortSurveyReply reply;
      reply.nonce = request->nonce;
      for (const auto& conn : ocs_.SurveyConnections()) {
        reply.entries.push_back(PortSurveyEntry{
            .north = conn.north,
            .south = conn.south,
            .insertion_loss_db = conn.insertion_loss.value(),
            .return_loss_db = conn.return_loss.value(),
        });
      }
      return Encode(reply);
    }
    default:
      return {};  // replies are not valid requests
  }
}

std::vector<std::uint8_t> MessageBus::MaybeMangle(std::vector<std::uint8_t> frame,
                                                  bool* dropped) {
  *dropped = false;
  ++frames_sent_;
  if (rng_.Bernoulli(drop_probability_)) {
    ++frames_dropped_;
    *dropped = true;
    return {};
  }
  if (!frame.empty() && rng_.Bernoulli(corrupt_probability_)) {
    ++frames_corrupted_;
    const std::size_t byte = static_cast<std::size_t>(rng_.UniformInt(frame.size()));
    frame[byte] ^= static_cast<std::uint8_t>(1u << rng_.UniformInt(8));
  }
  return frame;
}

std::vector<std::uint8_t> MessageBus::RoundTrip(OcsAgent& agent,
                                                std::vector<std::uint8_t> frame) {
  bool dropped = false;
  auto delivered = MaybeMangle(std::move(frame), &dropped);
  if (dropped) return {};
  auto reply = agent.Handle(delivered);
  if (reply.empty()) return {};  // agent dropped a mangled frame
  auto returned = MaybeMangle(std::move(reply), &dropped);
  if (dropped) return {};
  return returned;
}

void FabricController::Register(int ocs_id, OcsAgent* agent) {
  assert(agent != nullptr);
  agents_[ocs_id] = agent;
}

FabricTransactionResult FabricController::ApplyTopology(
    const std::map<int, std::map<int, int>>& targets) {
  FabricTransactionResult result;
  for (const auto& [ocs_id, target] : targets) {
    auto it = agents_.find(ocs_id);
    if (it == agents_.end()) {
      result.error = "no agent registered for ocs " + std::to_string(ocs_id);
      return result;
    }
    const ReconfigureRequest request{.transaction_id = next_txn_++, .target = target};
    bool delivered = false;
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      if (attempt > 0) ++result.retries_used;
      auto reply_frame = bus_.RoundTrip(*it->second, Encode(request));
      if (reply_frame.empty()) continue;  // lost either direction; retry
      auto reply = DecodeReconfigureReply(reply_frame);
      if (!reply || reply->transaction_id != request.transaction_id) continue;
      result.replies[ocs_id] = *reply;
      if (!reply->ok) {
        result.error = "ocs " + std::to_string(ocs_id) + ": " + reply->error;
        return result;
      }
      delivered = true;
      break;
    }
    if (!delivered) {
      result.error = "ocs " + std::to_string(ocs_id) + ": transport exhausted retries";
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::map<int, TelemetryReply> FabricController::CollectTelemetry() {
  std::map<int, TelemetryReply> out;
  for (auto& [ocs_id, agent] : agents_) {
    const TelemetryRequest request{.nonce = next_nonce_++};
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      auto reply_frame = bus_.RoundTrip(*agent, Encode(request));
      if (reply_frame.empty()) continue;
      auto reply = DecodeTelemetryReply(reply_frame);
      if (!reply || reply->nonce != request.nonce) continue;
      out[ocs_id] = *reply;
      break;
    }
  }
  return out;
}

}  // namespace lightwave::ctrl
