#include "fec/rs_batch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

// The AVX2 path compiles through a per-function target attribute (no
// -mavx2 on the TU, so nothing outside the attributed functions can emit
// AVX2 instructions) and is only reachable when CPUID reports the feature.
// -DLIGHTWAVE_SIMD=OFF removes it entirely, leaving the portable SWAR and
// scalar paths.
#if defined(LIGHTWAVE_SIMD_ENABLED) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
#define LW_RS_BATCH_AVX2 1
#include <immintrin.h>
#else
#define LW_RS_BATCH_AVX2 0
#endif

namespace lightwave::fec::batch {
namespace {

using U16 = std::uint16_t;
using U64 = std::uint64_t;

constexpr int kW = kLaneWidth;
constexpr int kB = kPlaneBits;

// ---------------------------------------------------------------- scalar --

/// Mul-by-constant through the bit planes of one broadcast row block
/// (`planes` points at kB rows of kW identical values; lane 0 is read).
inline U16 MulPlanesScalar(U16 x, const U16* planes) {
  U16 acc = 0;
  for (int b = 0; b < kB; ++b) {
    const U16 mask = static_cast<U16>(-static_cast<int>((x >> b) & 1u));
    acc = static_cast<U16>(acc ^ (mask & planes[b * kW]));
  }
  return acc;
}

void EncodeTileScalar(const U16* data, int k, int parity, const U16* planes,
                      U16* rem) {
  std::memset(rem, 0, static_cast<std::size_t>(parity) * kW * sizeof(U16));
  U16 feedback[kW];
  for (int i = 0; i < k; ++i) {
    const U16* d = data + static_cast<std::size_t>(i) * kW;
    const U16* last = rem + static_cast<std::size_t>(parity - 1) * kW;
    for (int l = 0; l < kW; ++l) feedback[l] = static_cast<U16>(d[l] ^ last[l]);
    for (int j = parity - 1; j > 0; --j) {
      const U16* src = rem + static_cast<std::size_t>(j - 1) * kW;
      U16* dst = rem + static_cast<std::size_t>(j) * kW;
      const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
      for (int l = 0; l < kW; ++l) {
        dst[l] = static_cast<U16>(src[l] ^ MulPlanesScalar(feedback[l], p));
      }
    }
    for (int l = 0; l < kW; ++l) rem[l] = MulPlanesScalar(feedback[l], planes);
  }
}

void SyndromeTileScalar(const U16* word, int n, int two_t, const U16* planes,
                        U16* syn) {
  U16 acc[kW];
  for (int j = 0; j < two_t; ++j) {
    const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
    std::memset(acc, 0, sizeof(acc));
    for (int i = 0; i < n; ++i) {
      const U16* r = word + static_cast<std::size_t>(i) * kW;
      for (int l = 0; l < kW; ++l) {
        acc[l] = static_cast<U16>(MulPlanesScalar(acc[l], p) ^ r[l]);
      }
    }
    std::memcpy(syn + static_cast<std::size_t>(j) * kW, acc, sizeof(acc));
  }
}

// ------------------------------------------------------------------ SWAR --

// 4 symbol lanes per uint64. The per-lane all-ones mask for bit b comes from
// the multiply trick: ((v >> b) & kLaneOnes) puts a 0/1 in each 16-bit lane,
// and * 0xFFFF expands each to 0x0000/0xFFFF — the cross-lane terms
// 2^{16(k+1)} - 2^{16k} occupy exactly lane k, so no carries ever cross a
// lane boundary.
constexpr U64 kLaneOnes = 0x0001000100010001ull;
constexpr int kW64 = kW / 4;

inline U64 Load64(const U16* p) {
  U64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void Store64(U16* p, U64 v) { std::memcpy(p, &v, sizeof(v)); }

inline U64 LaneMask(U64 v, int b) { return ((v >> b) & kLaneOnes) * 0xFFFFull; }

void EncodeTileSwar(const U16* data, int k, int parity, const U16* planes,
                    U16* rem) {
  std::memset(rem, 0, static_cast<std::size_t>(parity) * kW * sizeof(U16));
  U64 mask[kW64][kB];
  for (int i = 0; i < k; ++i) {
    const U16* d = data + static_cast<std::size_t>(i) * kW;
    const U16* last = rem + static_cast<std::size_t>(parity - 1) * kW;
    for (int w = 0; w < kW64; ++w) {
      const U64 fb = Load64(d + 4 * w) ^ Load64(last + 4 * w);
      for (int b = 0; b < kB; ++b) mask[w][b] = LaneMask(fb, b);
    }
    for (int j = parity - 1; j > 0; --j) {
      const U16* src = rem + static_cast<std::size_t>(j - 1) * kW;
      U16* dst = rem + static_cast<std::size_t>(j) * kW;
      const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
      for (int w = 0; w < kW64; ++w) {
        U64 acc = Load64(src + 4 * w);
        for (int b = 0; b < kB; ++b) acc ^= mask[w][b] & Load64(p + b * kW);
        Store64(dst + 4 * w, acc);
      }
    }
    for (int w = 0; w < kW64; ++w) {
      U64 acc = 0;
      for (int b = 0; b < kB; ++b) acc ^= mask[w][b] & Load64(planes + b * kW);
      Store64(rem + 4 * w, acc);
    }
  }
}

void SyndromeTileSwar(const U16* word, int n, int two_t, const U16* planes,
                      U16* syn) {
  for (int j = 0; j < two_t; ++j) {
    const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
    U64 plane[kB][kW64];
    for (int b = 0; b < kB; ++b) {
      for (int w = 0; w < kW64; ++w) plane[b][w] = Load64(p + b * kW);
    }
    U64 acc[kW64] = {};
    for (int i = 0; i < n; ++i) {
      const U16* r = word + static_cast<std::size_t>(i) * kW;
      for (int w = 0; w < kW64; ++w) {
        U64 t = 0;
        for (int b = 0; b < kB; ++b) t ^= LaneMask(acc[w], b) & plane[b][w];
        acc[w] = t ^ Load64(r + 4 * w);
      }
    }
    for (int w = 0; w < kW64; ++w) Store64(syn + static_cast<std::size_t>(j) * kW + 4 * w, acc[w]);
  }
}

// ------------------------------------------------------------------ AVX2 --

#if LW_RS_BATCH_AVX2

/// Per-lane all-ones mask for bit b of each 16-bit lane: shift the bit to
/// the sign position and arithmetic-shift it back across the lane.
__attribute__((target("avx2"))) inline __m256i LaneMask256(__m256i v, int b) {
  return _mm256_srai_epi16(_mm256_slli_epi16(v, 15 - b), 15);
}

__attribute__((target("avx2"))) void EncodeTileAvx2(const U16* data, int k,
                                                    int parity,
                                                    const U16* planes,
                                                    U16* rem) {
  std::memset(rem, 0, static_cast<std::size_t>(parity) * kW * sizeof(U16));
  for (int i = 0; i < k; ++i) {
    const __m256i fb = _mm256_xor_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(data + static_cast<std::size_t>(i) * kW)),
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(rem + static_cast<std::size_t>(parity - 1) * kW)));
    __m256i mask[kB];
#pragma GCC unroll 10
    for (int b = 0; b < kB; ++b) mask[b] = LaneMask256(fb, b);
    for (int j = parity - 1; j > 0; --j) {
      const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
      __m256i acc = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rem + static_cast<std::size_t>(j - 1) * kW));
#pragma GCC unroll 10
      for (int b = 0; b < kB; ++b) {
        acc = _mm256_xor_si256(
            acc, _mm256_and_si256(mask[b], _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                               p + b * kW))));
      }
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(rem + static_cast<std::size_t>(j) * kW), acc);
    }
    __m256i acc0 = _mm256_setzero_si256();
#pragma GCC unroll 10
    for (int b = 0; b < kB; ++b) {
      acc0 = _mm256_xor_si256(
          acc0, _mm256_and_si256(mask[b], _mm256_loadu_si256(
                                              reinterpret_cast<const __m256i*>(planes + b * kW))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rem), acc0);
  }
}

__attribute__((target("avx2"))) void SyndromeTileAvx2(const U16* word, int n,
                                                      int two_t,
                                                      const U16* planes,
                                                      U16* syn) {
  for (int j = 0; j < two_t; ++j) {
    const U16* p = planes + static_cast<std::size_t>(j) * kB * kW;
    __m256i plane[kB];
#pragma GCC unroll 10
    for (int b = 0; b < kB; ++b) {
      plane[b] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + b * kW));
    }
    __m256i acc = _mm256_setzero_si256();
    for (int i = 0; i < n; ++i) {
      __m256i t = _mm256_setzero_si256();
#pragma GCC unroll 10
      for (int b = 0; b < kB; ++b) {
        t = _mm256_xor_si256(t, _mm256_and_si256(LaneMask256(acc, b), plane[b]));
      }
      acc = _mm256_xor_si256(
          t, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(word + static_cast<std::size_t>(i) * kW)));
    }
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(syn + static_cast<std::size_t>(j) * kW), acc);
  }
}

#endif  // LW_RS_BATCH_AVX2

// -------------------------------------------------------------- dispatch --

/// -1 = no Force() override; otherwise the forced Dispatch value.
std::atomic<int> g_forced{-1};

Dispatch BestSupported() {
#if LW_RS_BATCH_AVX2
  if (__builtin_cpu_supports("avx2")) return Dispatch::kAvx2;
#endif
  return Dispatch::kSwar;
}

Dispatch ParseEnvOrAuto() {
  const char* env = std::getenv("LIGHTWAVE_SIMD");
  if (env == nullptr || std::strcmp(env, "") == 0 || std::strcmp(env, "auto") == 0) {
    return BestSupported();
  }
  if (std::strcmp(env, "scalar") == 0) return Dispatch::kScalar;
  if (std::strcmp(env, "swar") == 0) return Dispatch::kSwar;
  if (std::strcmp(env, "avx2") == 0) {
    if (Supported(Dispatch::kAvx2)) return Dispatch::kAvx2;
    std::fprintf(stderr,
                 "lightwave: LIGHTWAVE_SIMD=avx2 requested but unavailable "
                 "(not compiled in or CPU lacks AVX2); using %s\n",
                 Name(BestSupported()));
    return BestSupported();
  }
  std::fprintf(stderr,
               "lightwave: unrecognized LIGHTWAVE_SIMD=%s (want auto|scalar|"
               "swar|avx2); using %s\n",
               env, Name(BestSupported()));
  return BestSupported();
}

Dispatch AutoDispatch() {
  static const Dispatch dispatch = ParseEnvOrAuto();
  return dispatch;
}

}  // namespace

const char* Name(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kScalar: return "scalar";
    case Dispatch::kSwar: return "swar";
    case Dispatch::kAvx2: return "avx2";
  }
  return "unknown";
}

bool Supported(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kScalar:
    case Dispatch::kSwar:
      return true;
    case Dispatch::kAvx2:
#if LW_RS_BATCH_AVX2
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

Dispatch Active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Dispatch>(forced);
  return AutoDispatch();
}

void Force(Dispatch dispatch) {
  LW_CHECK(Supported(dispatch)) << "cannot force unsupported dispatch "
                                << Name(dispatch);
  g_forced.store(static_cast<int>(dispatch), std::memory_order_relaxed);
}

void ResetDispatch() { g_forced.store(-1, std::memory_order_relaxed); }

void EncodeTile(const U16* data_tile, int k, int parity, const U16* planes,
                U16* rem_tile) {
  switch (Active()) {
#if LW_RS_BATCH_AVX2
    case Dispatch::kAvx2:
      EncodeTileAvx2(data_tile, k, parity, planes, rem_tile);
      return;
#endif
    case Dispatch::kSwar:
      EncodeTileSwar(data_tile, k, parity, planes, rem_tile);
      return;
    default:
      EncodeTileScalar(data_tile, k, parity, planes, rem_tile);
      return;
  }
}

void SyndromeTile(const U16* word_tile, int n, int two_t, const U16* planes,
                  U16* syn_tile) {
  switch (Active()) {
#if LW_RS_BATCH_AVX2
    case Dispatch::kAvx2:
      SyndromeTileAvx2(word_tile, n, two_t, planes, syn_tile);
      return;
#endif
    case Dispatch::kSwar:
      SyndromeTileSwar(word_tile, n, two_t, planes, syn_tile);
      return;
    default:
      SyndromeTileScalar(word_tile, n, two_t, planes, syn_tile);
      return;
  }
}

}  // namespace lightwave::fec::batch
