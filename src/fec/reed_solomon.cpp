#include "fec/reed_solomon.h"

#include <algorithm>
#include <cassert>

#include "common/check.h"

namespace lightwave::fec {

using Element = Gf1024::Element;

namespace {

bool AllInField(std::span<const Element> word) {
  return std::all_of(word.begin(), word.end(),
                     [](Element s) { return s < Gf1024::kFieldSize; });
}

}  // namespace

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  assert(n > k && k > 0 && n <= Gf1024::kGroupOrder);
  assert((n - k) % 2 == 0);
  const auto& gf = Gf1024::Instance();
  // generator(x) = prod_{i=1}^{2t} (x - alpha^i), conventional first root
  // alpha^1.
  generator_ = {1};
  const int parity = n - k;
  for (int i = 1; i <= parity; ++i) {
    const Element root = gf.AlphaPow(i);
    std::vector<Element> next(generator_.size() + 1, 0);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      // Multiply by (x + root) (== (x - root) in GF(2^m)).
      next[j + 1] ^= generator_[j];
      next[j] ^= gf.Mul(generator_[j], root);
    }
    generator_ = std::move(next);
  }
  // Log-domain copy for the flattened encoder multiply.
  generator_log_.resize(generator_.size(), 0);
  for (std::size_t j = 0; j < generator_.size(); ++j) {
    if (generator_[j] == 0) {
      generator_has_zero_ = true;
      generator_log_[j] = -1;
    } else {
      generator_log_[j] = gf.Log(generator_[j]);
    }
  }
  // Premultiplied alpha^j rows for the syndrome kernel.
  syndrome_rows_.resize(static_cast<std::size_t>(parity));
  for (int j = 1; j <= parity; ++j) {
    gf.BuildMulRow(gf.AlphaPow(j), syndrome_rows_[static_cast<std::size_t>(j - 1)]);
  }
  // Pre-broadcast bit-plane tables for the batch kernels: every plane value
  // is repeated kLaneWidth times so the vector paths read whole registers
  // straight from memory.
  static_assert(batch::kPlaneBits == Gf1024::kBits);
  const int lanes = batch::kLaneWidth;
  const int bits = batch::kPlaneBits;
  Gf1024::MulPlanes planes;
  encoder_planes_.resize(static_cast<std::size_t>(parity) * bits * lanes);
  for (int j = 0; j < parity; ++j) {
    gf.BuildMulPlanes(generator_[static_cast<std::size_t>(j)], planes);
    for (int b = 0; b < bits; ++b) {
      Element* row = encoder_planes_.data() +
                     (static_cast<std::size_t>(j) * bits + static_cast<std::size_t>(b)) * lanes;
      std::fill(row, row + lanes, planes[static_cast<std::size_t>(b)]);
    }
  }
  syndrome_planes_.resize(static_cast<std::size_t>(parity) * bits * lanes);
  for (int j = 0; j < parity; ++j) {
    gf.BuildMulPlanes(gf.AlphaPow(j + 1), planes);
    for (int b = 0; b < bits; ++b) {
      Element* row = syndrome_planes_.data() +
                     (static_cast<std::size_t>(j) * bits + static_cast<std::size_t>(b)) * lanes;
      std::fill(row, row + lanes, planes[static_cast<std::size_t>(b)]);
    }
  }
}

void ReedSolomon::EncodeInto(std::span<const Element> data,
                             std::span<Element> codeword) const {
  LW_CHECK(static_cast<int>(data.size()) == k_) << "data length != k";
  LW_CHECK(static_cast<int>(codeword.size()) == n_) << "codeword length != n";
  LW_DCHECK(AllInField(data)) << "data symbol outside GF(2^10)";
  const auto& gf = Gf1024::Instance();
  const int parity = n_ - k_;
  // LFSR division: remainder of data(x) * x^(n-k) by generator(x). The
  // remainder lives in the parity tail of the codeword (low->high) and is
  // reversed at the end so the codeword reads highest-degree first.
  Element* const rem = codeword.data() + k_;
  std::fill(rem, rem + parity, static_cast<Element>(0));
  for (int i = 0; i < k_; ++i) {
    const Element feedback =
        static_cast<Element>(data[static_cast<std::size_t>(i)] ^ rem[parity - 1]);
    if (feedback != 0 && !generator_has_zero_) {
      // Flattened log-domain multiply: one exp read per tap.
      const int lf = gf.Log(feedback);
      for (int j = parity - 1; j > 0; --j) {
        rem[j] = static_cast<Element>(rem[j - 1] ^ gf.ExpAt(lf + generator_log_[j]));
      }
      rem[0] = gf.ExpAt(lf + generator_log_[0]);
    } else if (feedback != 0) {
      // Degenerate generator with a zero coefficient: general path.
      for (int j = parity - 1; j > 0; --j) {
        rem[j] = static_cast<Element>(
            rem[j - 1] ^ gf.Mul(feedback, generator_[static_cast<std::size_t>(j)]));
      }
      rem[0] = gf.Mul(feedback, generator_[0]);
    } else {
      for (int j = parity - 1; j > 0; --j) rem[j] = rem[j - 1];
      rem[0] = 0;
    }
  }
  std::reverse(rem, rem + parity);
  if (codeword.data() != data.data()) {
    std::copy(data.begin(), data.end(), codeword.begin());
  }
}

std::vector<Element> ReedSolomon::Encode(const std::vector<Element>& data) const {
  std::vector<Element> codeword(static_cast<std::size_t>(n_));
  EncodeInto(data, codeword);
  return codeword;
}

void ReedSolomon::SyndromesInto(std::span<const Element> received,
                                std::span<Element> out) const {
  const int parity = n_ - k_;
  LW_DCHECK(static_cast<int>(received.size()) == n_);
  LW_DCHECK(static_cast<int>(out.size()) == parity);
  // The codeword as a polynomial has its first symbol as the highest-degree
  // coefficient: c(x) = sum received[i] * x^(n-1-i). S_j = c(alpha^j),
  // evaluated by Horner with the premultiplied alpha^j row: one branch-free
  // table read per symbol.
  const Element* const r = received.data();
  for (int j = 0; j < parity; ++j) {
    const Gf1024::MulRow& row = syndrome_rows_[static_cast<std::size_t>(j)];
    Element acc = 0;
    for (int i = 0; i < n_; ++i) {
      acc = static_cast<Element>(row[acc] ^ r[i]);
    }
    out[static_cast<std::size_t>(j)] = acc;
  }
}

std::vector<Element> ReedSolomon::Syndromes(const std::vector<Element>& received) const {
  std::vector<Element> syndromes(static_cast<std::size_t>(n_ - k_), 0);
  SyndromesInto(received, syndromes);
  return syndromes;
}

bool ReedSolomon::IsCodeword(const std::vector<Element>& word) const {
  if (static_cast<int>(word.size()) != n_) return false;
  if (!AllInField(word)) return false;
  const auto syn = Syndromes(word);
  return std::all_of(syn.begin(), syn.end(), [](Element s) { return s == 0; });
}

common::Result<int> ReedSolomon::DecodeInPlace(std::span<Element> word,
                                               Scratch& s) const {
  if (static_cast<int>(word.size()) != n_) {
    return common::InvalidArgument("received word length != n");
  }
  if (!AllInField(word)) {
    return common::InvalidArgument("received symbol outside GF(1024)");
  }
  s.syndromes.resize(static_cast<std::size_t>(n_ - k_));
  SyndromesInto(word, s.syndromes);
  return DecodeWithComputedSyndromes(word, s);
}

common::Result<int> ReedSolomon::DecodeWithComputedSyndromes(std::span<Element> word,
                                                             Scratch& s) const {
  const auto& gf = Gf1024::Instance();
  const int two_t = n_ - k_;
  const auto& syndromes = s.syndromes;
  if (std::all_of(syndromes.begin(), syndromes.end(), [](Element x) { return x == 0; })) {
    return 0;
  }

  // Berlekamp-Massey: find the error-locator polynomial sigma(x). All
  // polynomial buffers come from the scratch; resize() reuses their
  // retained capacity, so the loop does no per-iteration allocation.
  auto& sigma = s.sigma;
  auto& prev = s.prev;
  auto& temp = s.temp;
  sigma.assign(1, 1);
  prev.assign(1, 1);
  Element prev_discrepancy = 1;
  int m = 1;
  int errors = 0;  // current LFSR length L
  for (int i = 0; i < two_t; ++i) {
    // Discrepancy d = S_i + sum_{j=1}^{L} sigma_j * S_{i-j}.
    Element d = syndromes[static_cast<std::size_t>(i)];
    for (int j = 1; j <= errors && j < static_cast<int>(sigma.size()); ++j) {
      if (i - j >= 0) {
        d = static_cast<Element>(
            d ^ gf.Mul(sigma[static_cast<std::size_t>(j)],
                       syndromes[static_cast<std::size_t>(i - j)]));
      }
    }
    if (d == 0) {
      ++m;
      continue;
    }
    const Element coef = gf.Div(d, prev_discrepancy);
    const std::size_t needed = prev.size() + static_cast<std::size_t>(m);
    if (2 * errors <= i) {
      // sigma' = sigma - (d/prev_d) * x^m * prev, with prev <- old sigma.
      temp.assign(sigma.begin(), sigma.end());
      if (needed > sigma.size()) sigma.resize(needed, 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        sigma[j + static_cast<std::size_t>(m)] ^= gf.Mul(coef, prev[j]);
      }
      errors = i + 1 - errors;
      std::swap(prev, temp);
      prev_discrepancy = d;
      m = 1;
    } else {
      if (needed > sigma.size()) sigma.resize(needed, 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        sigma[j + static_cast<std::size_t>(m)] ^= gf.Mul(coef, prev[j]);
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (num_errors <= 0 || num_errors > t()) {
    return common::Internal("uncorrectable: error count exceeds t");
  }

  // Chien search over positions. Symbol word[i] has polynomial degree
  // n-1-i; an error at degree e corresponds to locator root alpha^{-e}.
  auto& error_positions = s.positions;  // index into `word`
  error_positions.clear();
  for (int i = 0; i < n_; ++i) {
    const int degree = n_ - 1 - i;
    const Element x_inv = gf.AlphaPow(-degree);  // evaluate sigma(alpha^{-e})
    Element acc = 0;
    for (int j = static_cast<int>(sigma.size()) - 1; j >= 0; --j) {
      acc = static_cast<Element>(gf.Mul(acc, x_inv) ^ sigma[static_cast<std::size_t>(j)]);
    }
    if (acc == 0) error_positions.push_back(i);
  }
  if (static_cast<int>(error_positions.size()) != num_errors) {
    return common::Internal("uncorrectable: locator roots != degree");
  }

  // Forney: error values. Error evaluator omega(x) = [S(x) * sigma(x)]
  // mod x^{2t}, with S(x) = sum S_{j+1} x^j.
  auto& omega = s.omega;
  omega.assign(static_cast<std::size_t>(two_t), 0);
  for (std::size_t i = 0; i < omega.size(); ++i) {
    Element acc = 0;
    for (std::size_t j = 0; j <= i && j < sigma.size(); ++j) {
      acc = static_cast<Element>(acc ^ gf.Mul(sigma[j], syndromes[i - j]));
    }
    omega[i] = acc;
  }
  // Formal derivative of sigma.
  auto& sigma_prime = s.sigma_prime;
  sigma_prime.clear();
  for (std::size_t j = 1; j < sigma.size(); j += 2) sigma_prime.push_back(sigma[j]);

  for (int pos : error_positions) {
    const int degree = n_ - 1 - pos;
    const Element x_inv = gf.AlphaPow(-degree);
    // omega(x_inv)
    Element num = 0;
    for (int j = static_cast<int>(omega.size()) - 1; j >= 0; --j) {
      num = static_cast<Element>(gf.Mul(num, x_inv) ^ omega[static_cast<std::size_t>(j)]);
    }
    // sigma'(x_inv) evaluated as polynomial in x^2: sigma'(x) = sum
    // sigma_{2j+1} x^{2j}.
    Element den = 0;
    const Element x_inv_sq = gf.Mul(x_inv, x_inv);
    for (int j = static_cast<int>(sigma_prime.size()) - 1; j >= 0; --j) {
      den = static_cast<Element>(gf.Mul(den, x_inv_sq) ^
                                 sigma_prime[static_cast<std::size_t>(j)]);
    }
    if (den == 0) return common::Internal("Forney denominator zero");
    // Error magnitude with first root alpha^1 and S(x) = sum S_{j+1} x^j:
    // e = omega(X^{-1}) / sigma'(X^{-1}).
    const Element magnitude = gf.Div(num, den);
    word[static_cast<std::size_t>(pos)] ^= magnitude;
  }
  // Verify the correction by recomputing the syndromes in place.
  SyndromesInto(word, s.syndromes);
  if (!std::all_of(s.syndromes.begin(), s.syndromes.end(),
                   [](Element x) { return x == 0; })) {
    return common::Internal("uncorrectable: correction failed verification");
  }
  return num_errors;
}

void ReedSolomon::EncodeMany(std::span<const Element> data, std::span<Element> codewords,
                             BatchScratch& scratch) const {
  LW_CHECK(data.size() % static_cast<std::size_t>(k_) == 0) << "data length % k != 0";
  const std::size_t count = data.size() / static_cast<std::size_t>(k_);
  LW_CHECK(codewords.size() == count * static_cast<std::size_t>(n_))
      << "codewords length != count * n";
  for (std::size_t w = 0; w < count; ++w) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(w * static_cast<std::size_t>(k_)),
              data.begin() + static_cast<std::ptrdiff_t>((w + 1) * static_cast<std::size_t>(k_)),
              codewords.begin() + static_cast<std::ptrdiff_t>(w * static_cast<std::size_t>(n_)));
  }
  EncodeManyInPlace(codewords, scratch);
}

void ReedSolomon::EncodeManyInPlace(std::span<Element> codewords,
                                    BatchScratch& scratch) const {
  LW_CHECK(codewords.size() % static_cast<std::size_t>(n_) == 0)
      << "codewords length % n != 0";
  const int count = static_cast<int>(codewords.size() / static_cast<std::size_t>(n_));
  const int lanes = batch::kLaneWidth;
  const int parity = n_ - k_;
  scratch.tile.resize(static_cast<std::size_t>(k_) * lanes);
  scratch.rem_tile.resize(static_cast<std::size_t>(parity) * lanes);
  int w = 0;
  for (; w + lanes <= count; w += lanes) {
    Element* block = codewords.data() + static_cast<std::size_t>(w) * n_;
    // Transpose the systematic prefixes into the SoA tile.
    for (int i = 0; i < k_; ++i) {
      Element* row = scratch.tile.data() + static_cast<std::size_t>(i) * lanes;
      for (int l = 0; l < lanes; ++l) {
        row[l] = block[static_cast<std::size_t>(l) * n_ + i];
        LW_DCHECK(row[l] < Gf1024::kFieldSize) << "data symbol outside GF(2^10)";
      }
    }
    batch::EncodeTile(scratch.tile.data(), k_, parity, encoder_planes_.data(),
                      scratch.rem_tile.data());
    // Remainder rows are low->high; the codeword tail reads highest-degree
    // first (the scalar kernel's std::reverse).
    for (int j = 0; j < parity; ++j) {
      const Element* row = scratch.rem_tile.data() + static_cast<std::size_t>(j) * lanes;
      for (int l = 0; l < lanes; ++l) {
        block[static_cast<std::size_t>(l) * n_ + k_ + (parity - 1 - j)] = row[l];
      }
    }
  }
  for (; w < count; ++w) {  // ragged tail: scalar kernel, same bits
    std::span<Element> word(codewords.data() + static_cast<std::size_t>(w) * n_,
                            static_cast<std::size_t>(n_));
    EncodeInto(word.first(static_cast<std::size_t>(k_)), word);
  }
}

void ReedSolomon::DecodeMany(std::span<Element> words, std::span<int> corrected,
                             BatchScratch& scratch) const {
  DecodeManyWithErasures(words, {}, corrected, scratch);
}

void ReedSolomon::DecodeManyWithErasures(std::span<Element> words,
                                         const std::vector<std::vector<int>>& erasures,
                                         std::span<int> corrected,
                                         BatchScratch& scratch) const {
  LW_CHECK(words.size() % static_cast<std::size_t>(n_) == 0) << "words length % n != 0";
  const int count = static_cast<int>(words.size() / static_cast<std::size_t>(n_));
  LW_CHECK(static_cast<int>(corrected.size()) == count) << "corrected length != count";
  LW_CHECK(erasures.empty() || static_cast<int>(erasures.size()) == count)
      << "erasures length != count";
  const int lanes = batch::kLaneWidth;
  const int two_t = n_ - k_;
  scratch.tile.resize(static_cast<std::size_t>(n_) * lanes);
  scratch.syn_tile.resize(static_cast<std::size_t>(two_t) * lanes);

  const auto erasures_of = [&](int word_index) -> const std::vector<int>* {
    if (erasures.empty()) return nullptr;
    const auto& e = erasures[static_cast<std::size_t>(word_index)];
    return e.empty() ? nullptr : &e;
  };
  // Scalar fallback for one word, identical to the public per-word calls.
  const auto decode_one = [&](int word_index) {
    Element* word = words.data() + static_cast<std::size_t>(word_index) * n_;
    const std::vector<int>* erased = erasures_of(word_index);
    if (erased == nullptr) {
      const auto result = DecodeInPlace({word, static_cast<std::size_t>(n_)}, scratch.scalar);
      corrected[static_cast<std::size_t>(word_index)] =
          result.ok() ? result.value() : kDecodeFailed;
      return;
    }
    scratch.word_copy.assign(word, word + n_);
    const auto outcome = DecodeWithErasures(scratch.word_copy, *erased);
    if (outcome.ok()) {
      std::copy(outcome.value().codeword.begin(), outcome.value().codeword.end(), word);
      corrected[static_cast<std::size_t>(word_index)] = outcome.value().corrected_symbols;
    } else {
      corrected[static_cast<std::size_t>(word_index)] = kDecodeFailed;
    }
  };

  int w = 0;
  for (; w + lanes <= count; w += lanes) {
    const Element* block = words.data() + static_cast<std::size_t>(w) * n_;
    bool lane_valid[batch::kLaneWidth];
    for (int l = 0; l < lanes; ++l) lane_valid[l] = true;
    for (int i = 0; i < n_; ++i) {
      Element* row = scratch.tile.data() + static_cast<std::size_t>(i) * lanes;
      for (int l = 0; l < lanes; ++l) {
        const Element v = block[static_cast<std::size_t>(l) * n_ + i];
        row[l] = v;
        if (v >= Gf1024::kFieldSize) lane_valid[l] = false;
      }
    }
    batch::SyndromeTile(scratch.tile.data(), n_, two_t, syndrome_planes_.data(),
                        scratch.syn_tile.data());
    for (int l = 0; l < lanes; ++l) {
      const int word_index = w + l;
      if (!lane_valid[l]) {
        // The scalar calls reject out-of-field words before touching them.
        corrected[static_cast<std::size_t>(word_index)] = kDecodeFailed;
        continue;
      }
      bool clean = true;
      for (int j = 0; j < two_t; ++j) {
        if (scratch.syn_tile[static_cast<std::size_t>(j) * lanes + static_cast<std::size_t>(l)] !=
            0) {
          clean = false;
          break;
        }
      }
      const std::vector<int>* erased = erasures_of(word_index);
      if (clean && erased != nullptr) {
        // DecodeWithErasures validates the erasure list before its own
        // zero-syndrome early-out; replicate that order.
        bool valid = static_cast<int>(erased->size()) <= two_t;
        for (int pos : *erased) {
          if (pos < 0 || pos >= n_) valid = false;
        }
        corrected[static_cast<std::size_t>(word_index)] = valid ? 0 : kDecodeFailed;
        continue;
      }
      if (clean) {
        corrected[static_cast<std::size_t>(word_index)] = 0;
        continue;
      }
      if (erased != nullptr) {
        decode_one(word_index);
        continue;
      }
      // Slow path, reusing the tile's syndromes instead of recomputing.
      scratch.scalar.syndromes.resize(static_cast<std::size_t>(two_t));
      for (int j = 0; j < two_t; ++j) {
        scratch.scalar.syndromes[static_cast<std::size_t>(j)] =
            scratch.syn_tile[static_cast<std::size_t>(j) * lanes + static_cast<std::size_t>(l)];
      }
      const auto result = DecodeWithComputedSyndromes(
          {words.data() + static_cast<std::size_t>(word_index) * n_,
           static_cast<std::size_t>(n_)},
          scratch.scalar);
      corrected[static_cast<std::size_t>(word_index)] =
          result.ok() ? result.value() : kDecodeFailed;
    }
  }
  for (; w < count; ++w) decode_one(w);  // ragged tail
}

common::Result<DecodeOutcome> ReedSolomon::Decode(const std::vector<Element>& received) const {
  DecodeOutcome outcome;
  outcome.codeword = received;
  Scratch scratch;
  auto corrected = DecodeInPlace(outcome.codeword, scratch);
  if (!corrected.ok()) return corrected.error();
  outcome.corrected_symbols = corrected.value();
  return outcome;
}

common::Result<DecodeOutcome> ReedSolomon::DecodeWithErasures(
    const std::vector<Element>& received, const std::vector<int>& erasures) const {
  if (static_cast<int>(received.size()) != n_) {
    return common::InvalidArgument("received word length != n");
  }
  if (!AllInField(received)) {
    return common::InvalidArgument("received symbol outside GF(1024)");
  }
  if (erasures.empty()) return Decode(received);
  const int two_t = n_ - k_;
  if (static_cast<int>(erasures.size()) > two_t) {
    return common::InvalidArgument("more erasures than the code can correct");
  }
  for (int pos : erasures) {
    if (pos < 0 || pos >= n_) return common::InvalidArgument("erasure out of range");
  }

  const auto& gf = Gf1024::Instance();
  const auto syndromes = Syndromes(received);
  if (std::all_of(syndromes.begin(), syndromes.end(), [](Element s) { return s == 0; })) {
    return DecodeOutcome{.codeword = received, .corrected_symbols = 0};
  }

  auto poly_mul_mod = [&](const std::vector<Element>& a, const std::vector<Element>& b) {
    std::vector<Element> out(static_cast<std::size_t>(two_t), 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0) continue;
      for (std::size_t j = 0; j < b.size() && i + j < out.size(); ++j) {
        out[i + j] = static_cast<Element>(out[i + j] ^ gf.Mul(a[i], b[j]));
      }
    }
    return out;
  };
  auto eval = [&](const std::vector<Element>& p, Element x) {
    Element acc = 0;
    for (int i = static_cast<int>(p.size()) - 1; i >= 0; --i) {
      acc = static_cast<Element>(gf.Mul(acc, x) ^ p[static_cast<std::size_t>(i)]);
    }
    return acc;
  };

  // Erasure locator Gamma(x) = prod (1 - Y_i x), Y_i = alpha^{degree}.
  std::vector<Element> gamma = {1};
  for (int pos : erasures) {
    const Element y = gf.AlphaPow(n_ - 1 - pos);
    std::vector<Element> next(gamma.size() + 1, 0);
    for (std::size_t j = 0; j < gamma.size(); ++j) {
      next[j] ^= gamma[j];
      next[j + 1] ^= gf.Mul(gamma[j], y);
    }
    gamma = std::move(next);
  }

  // Modified syndromes Xi = [S(x) * Gamma(x)] mod x^{2t}; BM runs on the
  // tail Xi_f .. Xi_{2t-1} to find the error locator sigma.
  const int f = static_cast<int>(erasures.size());
  const auto xi = poly_mul_mod(
      std::vector<Element>(syndromes.begin(), syndromes.end()), gamma);
  std::vector<Element> u(xi.begin() + f, xi.end());  // length 2t - f

  // Berlekamp-Massey over the modified syndromes; temp is hoisted out so
  // the loop reuses its capacity instead of allocating per iteration.
  std::vector<Element> sigma = {1};
  std::vector<Element> prev = {1};
  std::vector<Element> temp;
  Element prev_discrepancy = 1;
  int m = 1;
  int errors = 0;
  for (int i = 0; i < static_cast<int>(u.size()); ++i) {
    Element d = u[static_cast<std::size_t>(i)];
    for (int j = 1; j <= errors && j < static_cast<int>(sigma.size()); ++j) {
      if (i - j >= 0) {
        d = static_cast<Element>(d ^ gf.Mul(sigma[static_cast<std::size_t>(j)],
                                            u[static_cast<std::size_t>(i - j)]));
      }
    }
    if (d == 0) {
      ++m;
      continue;
    }
    const Element coef = gf.Div(d, prev_discrepancy);
    const std::size_t needed = prev.size() + static_cast<std::size_t>(m);
    if (2 * errors <= i) {
      temp.assign(sigma.begin(), sigma.end());
      if (needed > sigma.size()) sigma.resize(needed, 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        sigma[j + static_cast<std::size_t>(m)] ^= gf.Mul(coef, prev[j]);
      }
      errors = i + 1 - errors;
      std::swap(prev, temp);
      prev_discrepancy = d;
      m = 1;
    } else {
      if (needed > sigma.size()) sigma.resize(needed, 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        sigma[j + static_cast<std::size_t>(m)] ^= gf.Mul(coef, prev[j]);
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (2 * num_errors + f > two_t) {
    return common::Internal("uncorrectable: errors + erasures exceed capability");
  }

  // Errata locator psi = sigma * gamma; its roots cover both error and
  // erasure positions.
  std::vector<Element> psi(sigma.size() + gamma.size() - 1, 0);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    for (std::size_t j = 0; j < gamma.size(); ++j) {
      psi[i + j] = static_cast<Element>(psi[i + j] ^ gf.Mul(sigma[i], gamma[j]));
    }
  }

  // Chien search for errata positions.
  std::vector<int> errata_positions;
  for (int i = 0; i < n_; ++i) {
    const Element x_inv = gf.AlphaPow(-(n_ - 1 - i));
    if (eval(psi, x_inv) == 0) errata_positions.push_back(i);
  }
  if (static_cast<int>(errata_positions.size()) != static_cast<int>(psi.size()) - 1) {
    return common::Internal("uncorrectable: errata locator roots != degree");
  }

  // Errata evaluator omega = [S(x) * psi(x)] mod x^{2t}; Forney magnitudes
  // e_k = omega(X^{-1}) / psi'(X^{-1}).
  const auto omega = poly_mul_mod(
      std::vector<Element>(syndromes.begin(), syndromes.end()), psi);
  auto eval_derivative = [&](const std::vector<Element>& p, Element x) {
    // p'(x) = sum over odd j of p_j x^{j-1} (GF(2^m)).
    Element acc = 0;
    Element x_pow = 1;  // x^{j-1} built up two steps at a time
    const Element x_sq = gf.Mul(x, x);
    for (std::size_t j = 1; j < p.size(); j += 2) {
      acc = static_cast<Element>(acc ^ gf.Mul(p[j], x_pow));
      x_pow = gf.Mul(x_pow, x_sq);
    }
    return acc;
  };

  std::vector<Element> corrected = received;
  for (int pos : errata_positions) {
    const Element x_inv = gf.AlphaPow(-(n_ - 1 - pos));
    const Element num = eval(omega, x_inv);
    const Element den = eval_derivative(psi, x_inv);
    if (den == 0) return common::Internal("Forney denominator zero");
    corrected[static_cast<std::size_t>(pos)] ^= gf.Div(num, den);
  }
  if (!IsCodeword(corrected)) {
    return common::Internal("uncorrectable: correction failed verification");
  }
  return DecodeOutcome{.codeword = std::move(corrected),
                       .corrected_symbols = static_cast<int>(errata_positions.size())};
}

}  // namespace lightwave::fec
