#include "fec/reed_solomon.h"

#include <algorithm>
#include <cassert>

namespace lightwave::fec {

using Element = Gf1024::Element;

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  assert(n > k && k > 0 && n <= Gf1024::kGroupOrder);
  assert((n - k) % 2 == 0);
  const auto& gf = Gf1024::Instance();
  // generator(x) = prod_{i=1}^{2t} (x - alpha^i), conventional first root
  // alpha^1.
  generator_ = {1};
  const int parity = n - k;
  for (int i = 1; i <= parity; ++i) {
    const Element root = gf.AlphaPow(i);
    std::vector<Element> next(generator_.size() + 1, 0);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      // Multiply by (x + root) (== (x - root) in GF(2^m)).
      next[j + 1] ^= generator_[j];
      next[j] ^= gf.Mul(generator_[j], root);
    }
    generator_ = std::move(next);
  }
}

std::vector<Element> ReedSolomon::Encode(const std::vector<Element>& data) const {
  assert(static_cast<int>(data.size()) == k_);
  const auto& gf = Gf1024::Instance();
  const int parity = n_ - k_;
  // LFSR division: remainder of data(x) * x^(n-k) by generator(x).
  std::vector<Element> remainder(static_cast<std::size_t>(parity), 0);
  for (int i = 0; i < k_; ++i) {
    const Element feedback =
        static_cast<Element>(data[static_cast<std::size_t>(i)] ^ remainder.back());
    // Shift left by one.
    for (int j = parity - 1; j > 0; --j) {
      remainder[static_cast<std::size_t>(j)] = static_cast<Element>(
          remainder[static_cast<std::size_t>(j - 1)] ^
          gf.Mul(feedback, generator_[static_cast<std::size_t>(j)]));
    }
    remainder[0] = gf.Mul(feedback, generator_[0]);
  }
  std::vector<Element> codeword = data;
  // Parity appended highest-degree first so that the codeword read as a
  // polynomial is data(x)*x^(n-k) + remainder(x).
  codeword.insert(codeword.end(), remainder.rbegin(), remainder.rend());
  return codeword;
}

std::vector<Element> ReedSolomon::Syndromes(const std::vector<Element>& received) const {
  const auto& gf = Gf1024::Instance();
  const int parity = n_ - k_;
  std::vector<Element> syndromes(static_cast<std::size_t>(parity), 0);
  // The codeword as a polynomial has its first symbol as the highest-degree
  // coefficient: c(x) = sum received[i] * x^(n-1-i). S_j = c(alpha^j).
  for (int j = 1; j <= parity; ++j) {
    const Element a = gf.AlphaPow(j);
    Element acc = 0;
    for (int i = 0; i < n_; ++i) {
      acc = static_cast<Element>(gf.Mul(acc, a) ^ received[static_cast<std::size_t>(i)]);
    }
    syndromes[static_cast<std::size_t>(j - 1)] = acc;
  }
  return syndromes;
}

bool ReedSolomon::IsCodeword(const std::vector<Element>& word) const {
  if (static_cast<int>(word.size()) != n_) return false;
  const auto syn = Syndromes(word);
  return std::all_of(syn.begin(), syn.end(), [](Element s) { return s == 0; });
}

common::Result<DecodeOutcome> ReedSolomon::Decode(const std::vector<Element>& received) const {
  if (static_cast<int>(received.size()) != n_) {
    return common::InvalidArgument("received word length != n");
  }
  const auto& gf = Gf1024::Instance();
  const auto syndromes = Syndromes(received);
  const bool clean =
      std::all_of(syndromes.begin(), syndromes.end(), [](Element s) { return s == 0; });
  if (clean) {
    return DecodeOutcome{.codeword = received, .corrected_symbols = 0};
  }

  // Berlekamp-Massey: find the error-locator polynomial sigma(x).
  std::vector<Element> sigma = {1};
  std::vector<Element> prev = {1};
  Element prev_discrepancy = 1;
  int m = 1;
  int errors = 0;  // current LFSR length L
  for (int i = 0; i < n_ - k_; ++i) {
    // Discrepancy d = S_i + sum_{j=1}^{L} sigma_j * S_{i-j}.
    Element d = syndromes[static_cast<std::size_t>(i)];
    for (int j = 1; j <= errors && j < static_cast<int>(sigma.size()); ++j) {
      if (i - j >= 0) {
        d = static_cast<Element>(
            d ^ gf.Mul(sigma[static_cast<std::size_t>(j)],
                       syndromes[static_cast<std::size_t>(i - j)]));
      }
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * errors <= i) {
      std::vector<Element> temp = sigma;
      // sigma = sigma - (d/prev_d) * x^m * prev
      const Element coef = gf.Div(d, prev_discrepancy);
      std::vector<Element> adjust(prev.size() + static_cast<std::size_t>(m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        adjust[j + static_cast<std::size_t>(m)] = gf.Mul(coef, prev[j]);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t j = 0; j < adjust.size(); ++j) sigma[j] ^= adjust[j];
      errors = i + 1 - errors;
      prev = std::move(temp);
      prev_discrepancy = d;
      m = 1;
    } else {
      const Element coef = gf.Div(d, prev_discrepancy);
      std::vector<Element> adjust(prev.size() + static_cast<std::size_t>(m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j) {
        adjust[j + static_cast<std::size_t>(m)] = gf.Mul(coef, prev[j]);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t j = 0; j < adjust.size(); ++j) sigma[j] ^= adjust[j];
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (num_errors <= 0 || num_errors > t()) {
    return common::Internal("uncorrectable: error count exceeds t");
  }

  // Chien search over positions. Symbol received[i] has polynomial degree
  // n-1-i; an error at degree e corresponds to locator root alpha^{-e}.
  std::vector<int> error_positions;  // index into `received`
  for (int i = 0; i < n_; ++i) {
    const int degree = n_ - 1 - i;
    const Element x_inv = gf.AlphaPow(-degree);  // evaluate sigma(alpha^{-e})
    Element acc = 0;
    for (int j = static_cast<int>(sigma.size()) - 1; j >= 0; --j) {
      acc = static_cast<Element>(gf.Mul(acc, x_inv) ^ sigma[static_cast<std::size_t>(j)]);
    }
    if (acc == 0) error_positions.push_back(i);
  }
  if (static_cast<int>(error_positions.size()) != num_errors) {
    return common::Internal("uncorrectable: locator roots != degree");
  }

  // Forney: error values. Error evaluator omega(x) = [S(x) * sigma(x)]
  // mod x^{2t}, with S(x) = sum S_{j+1} x^j.
  std::vector<Element> omega(static_cast<std::size_t>(n_ - k_), 0);
  for (std::size_t i = 0; i < omega.size(); ++i) {
    Element acc = 0;
    for (std::size_t j = 0; j <= i && j < sigma.size(); ++j) {
      acc = static_cast<Element>(acc ^ gf.Mul(sigma[j], syndromes[i - j]));
    }
    omega[i] = acc;
  }
  // Formal derivative of sigma.
  std::vector<Element> sigma_prime;
  for (std::size_t j = 1; j < sigma.size(); j += 2) sigma_prime.push_back(sigma[j]);

  std::vector<Element> corrected = received;
  for (int pos : error_positions) {
    const int degree = n_ - 1 - pos;
    const Element x_inv = gf.AlphaPow(-degree);
    // omega(x_inv)
    Element num = 0;
    for (int j = static_cast<int>(omega.size()) - 1; j >= 0; --j) {
      num = static_cast<Element>(gf.Mul(num, x_inv) ^ omega[static_cast<std::size_t>(j)]);
    }
    // sigma'(x_inv) evaluated as polynomial in x^2: sigma'(x) = sum
    // sigma_{2j+1} x^{2j}.
    Element den = 0;
    const Element x_inv_sq = gf.Mul(x_inv, x_inv);
    for (int j = static_cast<int>(sigma_prime.size()) - 1; j >= 0; --j) {
      den = static_cast<Element>(gf.Mul(den, x_inv_sq) ^
                                 sigma_prime[static_cast<std::size_t>(j)]);
    }
    if (den == 0) return common::Internal("Forney denominator zero");
    // Error magnitude with first root alpha^1 and S(x) = sum S_{j+1} x^j:
    // e = omega(X^{-1}) / sigma'(X^{-1}).
    const Element magnitude = gf.Div(num, den);
    corrected[static_cast<std::size_t>(pos)] ^= magnitude;
  }
  if (!IsCodeword(corrected)) {
    return common::Internal("uncorrectable: correction failed verification");
  }
  return DecodeOutcome{.codeword = std::move(corrected), .corrected_symbols = num_errors};
}

common::Result<DecodeOutcome> ReedSolomon::DecodeWithErasures(
    const std::vector<Element>& received, const std::vector<int>& erasures) const {
  if (static_cast<int>(received.size()) != n_) {
    return common::InvalidArgument("received word length != n");
  }
  if (erasures.empty()) return Decode(received);
  const int two_t = n_ - k_;
  if (static_cast<int>(erasures.size()) > two_t) {
    return common::InvalidArgument("more erasures than the code can correct");
  }
  for (int pos : erasures) {
    if (pos < 0 || pos >= n_) return common::InvalidArgument("erasure out of range");
  }

  const auto& gf = Gf1024::Instance();
  const auto syndromes = Syndromes(received);
  if (std::all_of(syndromes.begin(), syndromes.end(), [](Element s) { return s == 0; })) {
    return DecodeOutcome{.codeword = received, .corrected_symbols = 0};
  }

  auto poly_mul_mod = [&](const std::vector<Element>& a, const std::vector<Element>& b) {
    std::vector<Element> out(static_cast<std::size_t>(two_t), 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0) continue;
      for (std::size_t j = 0; j < b.size() && i + j < out.size(); ++j) {
        out[i + j] = static_cast<Element>(out[i + j] ^ gf.Mul(a[i], b[j]));
      }
    }
    return out;
  };
  auto eval = [&](const std::vector<Element>& p, Element x) {
    Element acc = 0;
    for (int i = static_cast<int>(p.size()) - 1; i >= 0; --i) {
      acc = static_cast<Element>(gf.Mul(acc, x) ^ p[static_cast<std::size_t>(i)]);
    }
    return acc;
  };

  // Erasure locator Gamma(x) = prod (1 - Y_i x), Y_i = alpha^{degree}.
  std::vector<Element> gamma = {1};
  for (int pos : erasures) {
    const Element y = gf.AlphaPow(n_ - 1 - pos);
    std::vector<Element> next(gamma.size() + 1, 0);
    for (std::size_t j = 0; j < gamma.size(); ++j) {
      next[j] ^= gamma[j];
      next[j + 1] ^= gf.Mul(gamma[j], y);
    }
    gamma = std::move(next);
  }

  // Modified syndromes Xi = [S(x) * Gamma(x)] mod x^{2t}; BM runs on the
  // tail Xi_f .. Xi_{2t-1} to find the error locator sigma.
  const int f = static_cast<int>(erasures.size());
  const auto xi = poly_mul_mod(
      std::vector<Element>(syndromes.begin(), syndromes.end()), gamma);
  std::vector<Element> u(xi.begin() + f, xi.end());  // length 2t - f

  std::vector<Element> sigma = {1};
  std::vector<Element> prev = {1};
  Element prev_discrepancy = 1;
  int m = 1;
  int errors = 0;
  for (int i = 0; i < static_cast<int>(u.size()); ++i) {
    Element d = u[static_cast<std::size_t>(i)];
    for (int j = 1; j <= errors && j < static_cast<int>(sigma.size()); ++j) {
      if (i - j >= 0) {
        d = static_cast<Element>(d ^ gf.Mul(sigma[static_cast<std::size_t>(j)],
                                            u[static_cast<std::size_t>(i - j)]));
      }
    }
    if (d == 0) {
      ++m;
      continue;
    }
    const Element coef = gf.Div(d, prev_discrepancy);
    std::vector<Element> adjust(prev.size() + static_cast<std::size_t>(m), 0);
    for (std::size_t j = 0; j < prev.size(); ++j) {
      adjust[j + static_cast<std::size_t>(m)] = gf.Mul(coef, prev[j]);
    }
    if (2 * errors <= i) {
      std::vector<Element> temp = sigma;
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t j = 0; j < adjust.size(); ++j) sigma[j] ^= adjust[j];
      errors = i + 1 - errors;
      prev = std::move(temp);
      prev_discrepancy = d;
      m = 1;
    } else {
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t j = 0; j < adjust.size(); ++j) sigma[j] ^= adjust[j];
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int num_errors = static_cast<int>(sigma.size()) - 1;
  if (2 * num_errors + f > two_t) {
    return common::Internal("uncorrectable: errors + erasures exceed capability");
  }

  // Errata locator psi = sigma * gamma; its roots cover both error and
  // erasure positions.
  std::vector<Element> psi(sigma.size() + gamma.size() - 1, 0);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    for (std::size_t j = 0; j < gamma.size(); ++j) {
      psi[i + j] = static_cast<Element>(psi[i + j] ^ gf.Mul(sigma[i], gamma[j]));
    }
  }

  // Chien search for errata positions.
  std::vector<int> errata_positions;
  for (int i = 0; i < n_; ++i) {
    const Element x_inv = gf.AlphaPow(-(n_ - 1 - i));
    if (eval(psi, x_inv) == 0) errata_positions.push_back(i);
  }
  if (static_cast<int>(errata_positions.size()) != static_cast<int>(psi.size()) - 1) {
    return common::Internal("uncorrectable: errata locator roots != degree");
  }

  // Errata evaluator omega = [S(x) * psi(x)] mod x^{2t}; Forney magnitudes
  // e_k = omega(X^{-1}) / psi'(X^{-1}).
  const auto omega = poly_mul_mod(
      std::vector<Element>(syndromes.begin(), syndromes.end()), psi);
  auto eval_derivative = [&](const std::vector<Element>& p, Element x) {
    // p'(x) = sum over odd j of p_j x^{j-1} (GF(2^m)).
    Element acc = 0;
    Element x_pow = 1;  // x^{j-1} built up two steps at a time
    const Element x_sq = gf.Mul(x, x);
    for (std::size_t j = 1; j < p.size(); j += 2) {
      acc = static_cast<Element>(acc ^ gf.Mul(p[j], x_pow));
      x_pow = gf.Mul(x_pow, x_sq);
    }
    return acc;
  };

  std::vector<Element> corrected = received;
  for (int pos : errata_positions) {
    const Element x_inv = gf.AlphaPow(-(n_ - 1 - pos));
    const Element num = eval(omega, x_inv);
    const Element den = eval_derivative(psi, x_inv);
    if (den == 0) return common::Internal("Forney denominator zero");
    corrected[static_cast<std::size_t>(pos)] ^= gf.Div(num, den);
  }
  if (!IsCodeword(corrected)) {
    return common::Internal("uncorrectable: correction failed verification");
  }
  return DecodeOutcome{.codeword = std::move(corrected),
                       .corrected_symbols = static_cast<int>(errata_positions.size())};
}

}  // namespace lightwave::fec
