// Concatenated FEC pipeline: channel -> soft-decision inner code -> KP4
// outer RS(544,514). Provides the analytic threshold/margin math used by
// Figs. 12 and 13, and a Monte-Carlo path that exercises the real RS codec
// through a binary-symmetric channel for validation.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "fec/inner_code.h"
#include "fec/reed_solomon.h"

namespace lightwave::fec {

/// Analytic post-FEC statistics of the KP4 outer code alone on a random
/// channel with the given pre-FEC (input) bit error ratio.
struct OuterCodeStats {
  double symbol_error_rate = 0.0;  // per 10-bit symbol
  double frame_error_rate = 0.0;   // P[> t symbols bad in a 544-symbol frame]
  double post_fec_ber = 0.0;       // approximate output BER
};

OuterCodeStats AnalyzeOuterCode(double pre_fec_ber);

class ConcatenatedFec {
 public:
  ConcatenatedFec() : inner_(InnerCode{}), outer_(ReedSolomon::Kp4()) {}
  ConcatenatedFec(InnerCode inner, ReedSolomon outer)
      : inner_(std::move(inner)), outer_(std::move(outer)) {}

  const InnerCode& inner() const { return inner_; }
  const ReedSolomon& outer() const { return outer_; }

  /// End-to-end post-FEC BER estimate from the channel BER: inner transfer
  /// then outer code analysis.
  double PostFecBer(double channel_ber, bool inner_enabled) const;

  /// The channel-BER threshold for a target post-FEC BER (default 1e-15,
  /// the de-facto Ethernet requirement). With the inner code disabled this
  /// returns ~2e-4 (the KP4 threshold).
  double ChannelBerThreshold(bool inner_enabled, double target_post_fec_ber = 1e-15) const;

  /// Monte-Carlo validation: pushes `frames` random KP4 frames through a
  /// binary-symmetric channel at `channel_ber` (after the inner transfer if
  /// enabled) and decodes with the real RS codec. Returns the observed frame
  /// error rate.
  ///
  /// Runs as a chunked parallel sweep over the batch RS kernels: frames are
  /// encoded/decoded batch::kLaneWidth at a time, pass through a
  /// BlockInterleaver in transmission order, and take exact BSC noise via
  /// geometric gap sampling. One NextU64() draw from `rng` seeds the sweep;
  /// every chunk derives a counter-based Rng::Stream, so the result and the
  /// caller's generator state are byte-identical at any LIGHTWAVE_THREADS
  /// setting (including 1) and under any batch dispatch path.
  double MeasureFrameErrorRate(double channel_ber, bool inner_enabled, int frames,
                               common::Rng& rng) const;

 private:
  InnerCode inner_;
  ReedSolomon outer_;
};

}  // namespace lightwave::fec
