// Systematic Reed-Solomon codec over GF(2^10). The KP4 instance RS(544,514)
// corrects up to t = 15 symbol errors per 544-symbol codeword and is the
// outer code of every link in the fabric; its 2e-4 pre-FEC BER threshold is
// the figure of merit used throughout §4.1.
//
// Decoder: syndrome computation, Berlekamp-Massey, Chien search, Forney.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "fec/gf.h"

namespace lightwave::fec {

struct DecodeOutcome {
  std::vector<Gf1024::Element> codeword;  // corrected, length n
  int corrected_symbols = 0;
};

class ReedSolomon {
 public:
  /// n = total symbols, k = data symbols; (n - k) must be even.
  ReedSolomon(int n, int k);

  /// The KP4 code of IEEE 802.3: RS(544, 514), t = 15.
  static ReedSolomon Kp4() { return ReedSolomon(544, 514); }

  int n() const { return n_; }
  int k() const { return k_; }
  int t() const { return (n_ - k_) / 2; }

  /// Systematic encode: returns data followed by (n-k) parity symbols.
  /// Requires data.size() == k and every symbol < 1024.
  std::vector<Gf1024::Element> Encode(const std::vector<Gf1024::Element>& data) const;

  /// Decodes a received word of length n. Fails when more than t symbols are
  /// corrupted (decoder detects an uncorrectable pattern) — note that, as
  /// with any bounded-distance decoder, patterns beyond t can occasionally
  /// miscorrect instead of failing.
  common::Result<DecodeOutcome> Decode(const std::vector<Gf1024::Element>& received) const;

  /// Errors-and-erasures decoding: `erasures` are positions whose symbols
  /// are known unreliable (e.g. flagged by the inner decoder). Corrects any
  /// pattern of e errors and f erasures with 2e + f <= 2t — up to 2t = 30
  /// pure erasures for KP4.
  common::Result<DecodeOutcome> DecodeWithErasures(
      const std::vector<Gf1024::Element>& received, const std::vector<int>& erasures) const;

  /// True when `word` is a valid codeword (all syndromes zero).
  bool IsCodeword(const std::vector<Gf1024::Element>& word) const;

 private:
  int n_;
  int k_;
  std::vector<Gf1024::Element> generator_;  // generator polynomial, low->high

  std::vector<Gf1024::Element> Syndromes(const std::vector<Gf1024::Element>& received) const;
};

}  // namespace lightwave::fec
