// Systematic Reed-Solomon codec over GF(2^10). The KP4 instance RS(544,514)
// corrects up to t = 15 symbol errors per 544-symbol codeword and is the
// outer code of every link in the fabric; its 2e-4 pre-FEC BER threshold is
// the figure of merit used throughout §4.1.
//
// Decoder: syndrome computation, Berlekamp-Massey, Chien search, Forney.
//
// Hot-kernel design (this codec sits under every BER→FEC evaluation the
// Monte-Carlo harness runs):
//   - EncodeInto/DecodeInPlace are span-based and allocation-free; the
//     decoder's Berlekamp-Massey/Chien/Forney working set lives in a
//     caller-owned Scratch that amortizes to zero allocations when reused
//     (one Scratch per worker thread under the parallel runtime).
//   - Syndromes use premultiplied alpha^j rows (Gf1024::MulRow): one
//     branch-free table read per symbol instead of two log/exp lookups
//     plus zero checks.
//   - The encoder's LFSR feedback multiply is flattened into the log
//     domain: the generator coefficients are stored as logs, so each inner
//     step is a single exp-table read.
// The std::vector convenience wrappers delegate to the span kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "fec/gf.h"
#include "fec/rs_batch.h"

namespace lightwave::fec {

struct DecodeOutcome {
  std::vector<Gf1024::Element> codeword;  // corrected, length n
  int corrected_symbols = 0;
};

class ReedSolomon {
 public:
  using Element = Gf1024::Element;

  /// Reusable decoder workspace. All buffers keep their capacity across
  /// calls, so a reused Scratch makes DecodeInPlace allocation-free in
  /// steady state. A Scratch is not thread-safe; give each worker its own.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class ReedSolomon;
    std::vector<Element> syndromes;
    std::vector<Element> sigma;
    std::vector<Element> prev;
    std::vector<Element> temp;
    std::vector<Element> omega;
    std::vector<Element> sigma_prime;
    std::vector<int> positions;
  };

  /// Reusable workspace for the batch kernels: the SoA staging tiles plus a
  /// scalar Scratch for per-lane slow paths. Buffers keep their capacity, so
  /// a reused BatchScratch makes the batch calls allocation-free in steady
  /// state. Not thread-safe; give each worker its own.
  class BatchScratch {
   public:
    BatchScratch() = default;

   private:
    friend class ReedSolomon;
    std::vector<Element> tile;      // SoA staging: up to n rows of kLaneWidth
    std::vector<Element> rem_tile;  // (n - k) remainder rows
    std::vector<Element> syn_tile;  // (n - k) syndrome rows
    std::vector<Element> word_copy;
    Scratch scalar;
  };

  /// DecodeMany/DecodeManyWithErasures per-word result for a word whose
  /// decode failed (uncorrectable pattern or invalid symbols); treat such a
  /// word's content as unspecified, exactly like a failed DecodeInPlace.
  static constexpr int kDecodeFailed = -1;

  /// n = total symbols, k = data symbols; (n - k) must be even.
  ReedSolomon(int n, int k);

  /// The KP4 code of IEEE 802.3: RS(544, 514), t = 15.
  static ReedSolomon Kp4() { return ReedSolomon(544, 514); }

  int n() const { return n_; }
  int k() const { return k_; }
  int t() const { return (n_ - k_) / 2; }

  /// Systematic encode into a caller-provided buffer: codeword = data
  /// followed by (n-k) parity symbols. Requires data.size() == k,
  /// codeword.size() == n, and every symbol < 1024. codeword[0..k) may
  /// alias data. Never allocates.
  void EncodeInto(std::span<const Element> data, std::span<Element> codeword) const;

  /// Systematic encode: returns data followed by (n-k) parity symbols.
  /// Requires data.size() == k and every symbol < 1024.
  std::vector<Gf1024::Element> Encode(const std::vector<Gf1024::Element>& data) const;

  /// Batch encode, bit-exact with EncodeInto on every word: `data` holds
  /// `count` codeword-major blocks of k symbols, `codewords` receives
  /// `count` blocks of n (so count = data.size() / k). Full
  /// batch::kLaneWidth tiles go through the vectorized SoA kernels; the
  /// ragged tail uses the scalar kernel. `data` must not overlap
  /// `codewords` (data already resident in the codeword buffer is the
  /// EncodeManyInPlace case).
  void EncodeMany(std::span<const Element> data, std::span<Element> codewords,
                  BatchScratch& scratch) const;

  /// Batch encode with the data aliasing the codeword buffer: each of the
  /// count = codewords.size() / n words already carries its k data symbols
  /// in positions [0, k); the (n-k) parity tails are filled in. Bit-exact
  /// with the aliased EncodeInto call on every word.
  void EncodeManyInPlace(std::span<Element> codewords, BatchScratch& scratch) const;

  /// Batch decode-and-correct in place: `words` holds count =
  /// words.size() / n received words; corrected[w] receives the corrected
  /// symbol count, or kDecodeFailed where DecodeInPlace would have failed.
  /// The syndrome sweep runs vectorized over SoA tiles; words with nonzero
  /// syndromes fall back per lane to the scalar Berlekamp-Massey path (fed
  /// the already-computed syndromes). Bit-exact with per-word DecodeInPlace:
  /// same corrected counts, same final word bytes, including after failures.
  void DecodeMany(std::span<Element> words, std::span<int> corrected,
                  BatchScratch& scratch) const;

  /// Batch errors-and-erasures decode in place: erasures[w] flags the known
  /// unreliable positions of word w (empty = plain decode). Clean words
  /// short-circuit through the vectorized syndrome sweep; flagged words
  /// with nonzero syndromes take the scalar DecodeWithErasures path.
  /// Bit-exact with the scalar calls; a failed word keeps its received
  /// bytes and gets kDecodeFailed.
  void DecodeManyWithErasures(std::span<Element> words,
                              const std::vector<std::vector<int>>& erasures,
                              std::span<int> corrected, BatchScratch& scratch) const;

  /// Decodes and corrects `word` (length n) in place using `scratch` for
  /// all intermediate state; returns the number of corrected symbols.
  /// Rejects words with out-of-field symbols (>= 1024). Fails when more
  /// than t symbols are corrupted, leaving `word` with the partial
  /// correction undone only on the verification path — treat `word` as
  /// unspecified after a failure.
  common::Result<int> DecodeInPlace(std::span<Element> word, Scratch& scratch) const;

  /// Decodes a received word of length n. Fails when more than t symbols are
  /// corrupted (decoder detects an uncorrectable pattern) — note that, as
  /// with any bounded-distance decoder, patterns beyond t can occasionally
  /// miscorrect instead of failing.
  common::Result<DecodeOutcome> Decode(const std::vector<Gf1024::Element>& received) const;

  /// Errors-and-erasures decoding: `erasures` are positions whose symbols
  /// are known unreliable (e.g. flagged by the inner decoder). Corrects any
  /// pattern of e errors and f erasures with 2e + f <= 2t — up to 2t = 30
  /// pure erasures for KP4.
  common::Result<DecodeOutcome> DecodeWithErasures(
      const std::vector<Gf1024::Element>& received, const std::vector<int>& erasures) const;

  /// True when `word` is a valid codeword (all syndromes zero).
  bool IsCodeword(const std::vector<Gf1024::Element>& word) const;

 private:
  int n_;
  int k_;
  std::vector<Element> generator_;  // generator polynomial, low->high
  /// Log-domain generator coefficients for the flattened encoder multiply;
  /// only valid when generator_has_zero_ is false (never for KP4-like
  /// codes, but a degenerate generator falls back to Gf1024::Mul).
  std::vector<int> generator_log_;
  bool generator_has_zero_ = false;
  /// syndrome_rows_[j - 1][x] == Mul(alpha^j, x) for j = 1..2t.
  std::vector<Gf1024::MulRow> syndrome_rows_;
  /// Pre-broadcast bit-plane tables for the batch kernels (fec/rs_batch.h):
  /// encoder_planes_[((j * kPlaneBits) + b) * kLaneWidth + lane] ==
  /// Mul(generator_[j], 1 << b) repeated across lanes; syndrome_planes_
  /// likewise for alpha^{j+1}, j in [0, 2t).
  std::vector<Element> encoder_planes_;
  std::vector<Element> syndrome_planes_;

  /// out.size() == n - k. Requires every symbol of `received` < 1024.
  void SyndromesInto(std::span<const Element> received, std::span<Element> out) const;
  std::vector<Gf1024::Element> Syndromes(const std::vector<Gf1024::Element>& received) const;

  /// The decoder tail shared by DecodeInPlace and the batch slow path:
  /// expects s.syndromes already filled for `word` (however they were
  /// computed) and `word` pre-validated; runs the all-zero early-out then
  /// Berlekamp-Massey / Chien / Forney.
  common::Result<int> DecodeWithComputedSyndromes(std::span<Element> word,
                                                  Scratch& s) const;
};

}  // namespace lightwave::fec
