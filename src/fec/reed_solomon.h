// Systematic Reed-Solomon codec over GF(2^10). The KP4 instance RS(544,514)
// corrects up to t = 15 symbol errors per 544-symbol codeword and is the
// outer code of every link in the fabric; its 2e-4 pre-FEC BER threshold is
// the figure of merit used throughout §4.1.
//
// Decoder: syndrome computation, Berlekamp-Massey, Chien search, Forney.
//
// Hot-kernel design (this codec sits under every BER→FEC evaluation the
// Monte-Carlo harness runs):
//   - EncodeInto/DecodeInPlace are span-based and allocation-free; the
//     decoder's Berlekamp-Massey/Chien/Forney working set lives in a
//     caller-owned Scratch that amortizes to zero allocations when reused
//     (one Scratch per worker thread under the parallel runtime).
//   - Syndromes use premultiplied alpha^j rows (Gf1024::MulRow): one
//     branch-free table read per symbol instead of two log/exp lookups
//     plus zero checks.
//   - The encoder's LFSR feedback multiply is flattened into the log
//     domain: the generator coefficients are stored as logs, so each inner
//     step is a single exp-table read.
// The std::vector convenience wrappers delegate to the span kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "fec/gf.h"

namespace lightwave::fec {

struct DecodeOutcome {
  std::vector<Gf1024::Element> codeword;  // corrected, length n
  int corrected_symbols = 0;
};

class ReedSolomon {
 public:
  using Element = Gf1024::Element;

  /// Reusable decoder workspace. All buffers keep their capacity across
  /// calls, so a reused Scratch makes DecodeInPlace allocation-free in
  /// steady state. A Scratch is not thread-safe; give each worker its own.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class ReedSolomon;
    std::vector<Element> syndromes;
    std::vector<Element> sigma;
    std::vector<Element> prev;
    std::vector<Element> temp;
    std::vector<Element> omega;
    std::vector<Element> sigma_prime;
    std::vector<int> positions;
  };

  /// n = total symbols, k = data symbols; (n - k) must be even.
  ReedSolomon(int n, int k);

  /// The KP4 code of IEEE 802.3: RS(544, 514), t = 15.
  static ReedSolomon Kp4() { return ReedSolomon(544, 514); }

  int n() const { return n_; }
  int k() const { return k_; }
  int t() const { return (n_ - k_) / 2; }

  /// Systematic encode into a caller-provided buffer: codeword = data
  /// followed by (n-k) parity symbols. Requires data.size() == k,
  /// codeword.size() == n, and every symbol < 1024. codeword[0..k) may
  /// alias data. Never allocates.
  void EncodeInto(std::span<const Element> data, std::span<Element> codeword) const;

  /// Systematic encode: returns data followed by (n-k) parity symbols.
  /// Requires data.size() == k and every symbol < 1024.
  std::vector<Gf1024::Element> Encode(const std::vector<Gf1024::Element>& data) const;

  /// Decodes and corrects `word` (length n) in place using `scratch` for
  /// all intermediate state; returns the number of corrected symbols.
  /// Rejects words with out-of-field symbols (>= 1024). Fails when more
  /// than t symbols are corrupted, leaving `word` with the partial
  /// correction undone only on the verification path — treat `word` as
  /// unspecified after a failure.
  common::Result<int> DecodeInPlace(std::span<Element> word, Scratch& scratch) const;

  /// Decodes a received word of length n. Fails when more than t symbols are
  /// corrupted (decoder detects an uncorrectable pattern) — note that, as
  /// with any bounded-distance decoder, patterns beyond t can occasionally
  /// miscorrect instead of failing.
  common::Result<DecodeOutcome> Decode(const std::vector<Gf1024::Element>& received) const;

  /// Errors-and-erasures decoding: `erasures` are positions whose symbols
  /// are known unreliable (e.g. flagged by the inner decoder). Corrects any
  /// pattern of e errors and f erasures with 2e + f <= 2t — up to 2t = 30
  /// pure erasures for KP4.
  common::Result<DecodeOutcome> DecodeWithErasures(
      const std::vector<Gf1024::Element>& received, const std::vector<int>& erasures) const;

  /// True when `word` is a valid codeword (all syndromes zero).
  bool IsCodeword(const std::vector<Gf1024::Element>& word) const;

 private:
  int n_;
  int k_;
  std::vector<Element> generator_;  // generator polynomial, low->high
  /// Log-domain generator coefficients for the flattened encoder multiply;
  /// only valid when generator_has_zero_ is false (never for KP4-like
  /// codes, but a degenerate generator falls back to Gf1024::Mul).
  std::vector<int> generator_log_;
  bool generator_has_zero_ = false;
  /// syndrome_rows_[j - 1][x] == Mul(alpha^j, x) for j = 1..2t.
  std::vector<Gf1024::MulRow> syndrome_rows_;

  /// out.size() == n - k. Requires every symbol of `received` < 1024.
  void SyndromesInto(std::span<const Element> received, std::span<Element> out) const;
  std::vector<Gf1024::Element> Syndromes(const std::vector<Gf1024::Element>& received) const;
};

}  // namespace lightwave::fec
