#include "fec/gf.h"

#include <cassert>

namespace lightwave::fec {

const Gf1024& Gf1024::Instance() {
  static const Gf1024 instance;
  return instance;
}

Gf1024::Gf1024() {
  std::uint32_t x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<Element>(x);
    log_[x] = i;
    x <<= 1;
    if (x & kFieldSize) x ^= kPrimitivePoly;
  }
  // Duplicate the table so Mul can skip the modulo.
  for (int i = 0; i < kGroupOrder; ++i) {
    exp_[static_cast<std::size_t>(i + kGroupOrder)] = exp_[static_cast<std::size_t>(i)];
  }
  log_[0] = -1;
}

Gf1024::Element Gf1024::Mul(Element a, Element b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[static_cast<std::size_t>(log_[a] + log_[b])];
}

Gf1024::Element Gf1024::Div(Element a, Element b) const {
  assert(b != 0);
  if (a == 0) return 0;
  int diff = log_[a] - log_[b];
  if (diff < 0) diff += kGroupOrder;
  return exp_[static_cast<std::size_t>(diff)];
}

Gf1024::Element Gf1024::Inv(Element a) const {
  assert(a != 0);
  return exp_[static_cast<std::size_t>(kGroupOrder - log_[a])];
}

Gf1024::Element Gf1024::Pow(Element a, int e) const {
  if (a == 0) return e == 0 ? static_cast<Element>(1) : static_cast<Element>(0);
  long long idx = static_cast<long long>(log_[a]) * e % kGroupOrder;
  if (idx < 0) idx += kGroupOrder;
  return exp_[static_cast<std::size_t>(idx)];
}

Gf1024::Element Gf1024::AlphaPow(int e) const {
  int idx = e % kGroupOrder;
  if (idx < 0) idx += kGroupOrder;
  return exp_[static_cast<std::size_t>(idx)];
}

int Gf1024::Log(Element a) const {
  assert(a != 0);
  return log_[a];
}

}  // namespace lightwave::fec
