#include "fec/gf.h"

#include <cassert>
#include <string>

#include "common/check.h"

namespace lightwave::fec {

const Gf1024& Gf1024::Instance() {
  static const Gf1024 instance;
  return instance;
}

Gf1024::Gf1024() {
  std::uint32_t x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<Element>(x);
    log_[x] = i;
    x <<= 1;
    if (x & kFieldSize) x ^= kPrimitivePoly;
  }
  // Duplicate the table so Mul can skip the modulo.
  for (int i = 0; i < kGroupOrder; ++i) {
    exp_[static_cast<std::size_t>(i + kGroupOrder)] = exp_[static_cast<std::size_t>(i)];
  }
  log_[0] = -1;
  LW_CHECK_OK(SelfCheck()) << "GF(2^10) log/antilog tables";
}

common::Status Gf1024::CheckTables(const ExpTable& exp, const LogTable& log) {
  if (exp[0] != 1) return common::Internal("exp[0] != 1");
  for (int e = 0; e < kGroupOrder; ++e) {
    const Element x = exp[static_cast<std::size_t>(e)];
    if (x == 0 || x >= kFieldSize) {
      return common::Internal("exp[" + std::to_string(e) + "] outside the group");
    }
    // Each step multiplies by alpha under the primitive polynomial.
    if (e + 1 < kGroupOrder) {
      std::uint32_t next = static_cast<std::uint32_t>(x) << 1;
      if (next & kFieldSize) next ^= kPrimitivePoly;
      if (exp[static_cast<std::size_t>(e + 1)] != static_cast<Element>(next)) {
        return common::Internal("exp[" + std::to_string(e + 1) +
                                "] breaks the alpha recurrence");
      }
    }
    // log must invert exp exactly (together with the range check above this
    // forces exp to enumerate all 1023 nonzero elements).
    if (log[x] != e) {
      return common::Internal("log[exp[" + std::to_string(e) + "]] != " +
                              std::to_string(e));
    }
    // The duplicated upper half lets Mul skip the modulo.
    if (exp[static_cast<std::size_t>(e + kGroupOrder)] != x) {
      return common::Internal("duplicated half diverges at " + std::to_string(e));
    }
  }
  if (log[0] != -1) return common::Internal("log[0] must be the -1 sentinel");
  // The group wraps: alpha * exp[1022] == exp[0] == 1 (alpha has order 1023).
  std::uint32_t wrap = static_cast<std::uint32_t>(exp[kGroupOrder - 1]) << 1;
  if (wrap & kFieldSize) wrap ^= kPrimitivePoly;
  if (wrap != 1) return common::Internal("alpha does not have order 1023");
  return common::Status::Ok();
}

void Gf1024::BuildMulRow(Element a, MulRow& row) const {
  row[0] = 0;
  if (a == 0) {
    row.fill(0);
    return;
  }
  const int la = log_[a];
  for (int x = 1; x < kFieldSize; ++x) {
    row[static_cast<std::size_t>(x)] = exp_[static_cast<std::size_t>(la + log_[x])];
  }
}

void Gf1024::BuildMulPlanes(Element a, MulPlanes& planes) const {
  for (int b = 0; b < kBits; ++b) {
    planes[static_cast<std::size_t>(b)] = Mul(a, static_cast<Element>(1 << b));
  }
}

Gf1024::Element Gf1024::Mul(Element a, Element b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[static_cast<std::size_t>(log_[a] + log_[b])];
}

Gf1024::Element Gf1024::Div(Element a, Element b) const {
  assert(b != 0);
  if (a == 0) return 0;
  int diff = log_[a] - log_[b];
  if (diff < 0) diff += kGroupOrder;
  return exp_[static_cast<std::size_t>(diff)];
}

Gf1024::Element Gf1024::Inv(Element a) const {
  assert(a != 0);
  return exp_[static_cast<std::size_t>(kGroupOrder - log_[a])];
}

Gf1024::Element Gf1024::Pow(Element a, int e) const {
  if (a == 0) return e == 0 ? static_cast<Element>(1) : static_cast<Element>(0);
  long long idx = static_cast<long long>(log_[a]) * e % kGroupOrder;
  if (idx < 0) idx += kGroupOrder;
  return exp_[static_cast<std::size_t>(idx)];
}

Gf1024::Element Gf1024::AlphaPow(int e) const {
  int idx = e % kGroupOrder;
  if (idx < 0) idx += kGroupOrder;
  return exp_[static_cast<std::size_t>(idx)];
}

int Gf1024::Log(Element a) const {
  assert(a != 0);
  return log_[a];
}

}  // namespace lightwave::fec
