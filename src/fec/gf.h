// GF(2^10) arithmetic for the KP4 Reed-Solomon code (RS(544,514) over
// 10-bit symbols, IEEE 802.3 Clause 91/119). Log/antilog tables are built
// once per process from the primitive polynomial x^10 + x^3 + 1.
#pragma once

#include <array>
#include <cstdint>

namespace lightwave::fec {

class Gf1024 {
 public:
  static constexpr int kBits = 10;
  static constexpr int kFieldSize = 1 << kBits;  // 1024
  static constexpr int kGroupOrder = kFieldSize - 1;  // 1023
  static constexpr std::uint32_t kPrimitivePoly = 0x409;  // x^10 + x^3 + 1

  using Element = std::uint16_t;

  /// Returns the process-wide table singleton (immutable after construction).
  static const Gf1024& Instance();

  Element Add(Element a, Element b) const { return a ^ b; }
  Element Mul(Element a, Element b) const;
  Element Div(Element a, Element b) const;  // b != 0
  Element Inv(Element a) const;             // a != 0
  Element Pow(Element a, int e) const;
  /// alpha^e for the primitive element alpha.
  Element AlphaPow(int e) const;
  /// Discrete log base alpha; a != 0.
  int Log(Element a) const;

 private:
  Gf1024();

  std::array<Element, 2 * kGroupOrder> exp_{};
  std::array<int, kFieldSize> log_{};
};

}  // namespace lightwave::fec
