#include "fec/concatenated.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/math.h"
#include "common/parallel.h"
#include "fec/interleaver.h"

namespace lightwave::fec {
namespace {

constexpr int kSymbolBits = Gf1024::kBits;

/// Frames per parallel chunk of the Monte-Carlo sweep: two full SoA tiles.
/// Fixed (never derived from the thread count) so the chunk partition — and
/// with it every Rng::Stream draw — is identical on any machine.
constexpr int kMcChunkFrames = 2 * batch::kLaneWidth;

/// Exact binary-symmetric channel over every bit of `symbols`: each of the
/// 10 bits of each symbol flips independently with probability p. Sampled
/// with geometric gap draws — O(bits * p) RNG draws instead of one Bernoulli
/// per bit, which would dominate the runtime now that the RS kernels are
/// vectorized. The flipped-bit distribution is exactly iid Bernoulli(p).
void FlipBscBits(std::span<Gf1024::Element> symbols, double p, common::Rng& rng) {
  if (p <= 0.0) return;
  if (p >= 1.0) {
    for (auto& s : symbols) s ^= static_cast<Gf1024::Element>(Gf1024::kFieldSize - 1);
    return;
  }
  const auto total_bits = static_cast<std::uint64_t>(symbols.size()) * kSymbolBits;
  const double log1mp = std::log1p(-p);
  std::uint64_t pos = 0;
  while (true) {
    // Gap to the next flipped bit: Geometric(p) counting clean bits, so
    // P(gap = 0) = p and consecutive flips are possible.
    const double u = rng.NextDouble();
    const double gap = std::floor(std::log1p(-u) / log1mp);
    if (gap >= static_cast<double>(total_bits)) return;  // beyond any index
    pos += static_cast<std::uint64_t>(gap);
    if (pos >= total_bits) return;
    symbols[static_cast<std::size_t>(pos / kSymbolBits)] ^=
        static_cast<Gf1024::Element>(1u << (pos % kSymbolBits));
    ++pos;
  }
}

/// log of binomial pmf term for numerical stability at tiny p.
double LogBinomialTerm(int n, int i, double p) {
  return std::lgamma(n + 1.0) - std::lgamma(i + 1.0) - std::lgamma(n - i + 1.0) +
         i * std::log(p) + (n - i) * std::log1p(-p);
}

}  // namespace

OuterCodeStats AnalyzeOuterCode(double pre_fec_ber) {
  OuterCodeStats stats;
  if (pre_fec_ber <= 0.0) return stats;
  const int n = 544;
  const int t = 15;
  const double ps = 1.0 - std::pow(1.0 - pre_fec_ber, kSymbolBits);
  stats.symbol_error_rate = ps;
  // Frame error: more than t of n symbols in error.
  double fer = 0.0;
  double post_symbol_errors = 0.0;  // E[symbol errors | decode failure] * P
  for (int i = t + 1; i <= n; ++i) {
    const double term = std::exp(LogBinomialTerm(n, i, ps));
    fer += term;
    post_symbol_errors += term * i;
    if (term < fer * 1e-18 && i > t + 8) break;  // series converged
  }
  stats.frame_error_rate = std::min(1.0, fer);
  // A failed frame passes its symbol errors through; each bad symbol has on
  // average ~ kSymbolBits * p_bit_in_bad_symbol errored bits. Approximate
  // bits-per-bad-symbol by the conditional expectation of a >=1-error
  // symbol.
  const double bits_per_bad_symbol =
      pre_fec_ber * kSymbolBits / std::max(ps, 1e-300);
  stats.post_fec_ber =
      std::min(1.0, post_symbol_errors * bits_per_bad_symbol / (n * kSymbolBits));
  return stats;
}

double ConcatenatedFec::PostFecBer(double channel_ber, bool inner_enabled) const {
  const double outer_input = inner_enabled ? inner_.Transfer(channel_ber) : channel_ber;
  return AnalyzeOuterCode(outer_input).post_fec_ber;
}

double ConcatenatedFec::ChannelBerThreshold(bool inner_enabled,
                                            double target_post_fec_ber) const {
  double lo = 1e-12, hi = 0.4;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (PostFecBer(mid, inner_enabled) <= target_post_fec_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ConcatenatedFec::MeasureFrameErrorRate(double channel_ber, bool inner_enabled,
                                              int frames, common::Rng& rng) const {
  assert(frames > 0);
  const double outer_input = inner_enabled ? inner_.Transfer(channel_ber) : channel_ber;
  // One draw seeds the whole sweep; each chunk then derives its own
  // counter-based stream, so the result — and the caller's generator state
  // afterwards — is byte-identical at any LIGHTWAVE_THREADS.
  const std::uint64_t sweep_seed = rng.NextU64();
  const int n = outer_.n();
  const int k = outer_.k();
  const std::int64_t failures = common::parallel::ParallelReduce<std::int64_t>(
      static_cast<std::uint64_t>(frames), kMcChunkFrames, std::int64_t{0},
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) -> std::int64_t {
        common::Rng stream = common::Rng::Stream(sweep_seed, chunk);
        ReedSolomon::BatchScratch scratch;
        std::vector<Gf1024::Element> data;
        std::vector<Gf1024::Element> words;
        std::vector<Gf1024::Element> tx;
        std::vector<int> corrected;
        std::int64_t chunk_failures = 0;
        std::uint64_t f = begin;
        while (f < end) {
          const int group = static_cast<int>(
              std::min<std::uint64_t>(end - f, batch::kLaneWidth));
          const auto gk = static_cast<std::size_t>(group) * static_cast<std::size_t>(k);
          const auto gn = static_cast<std::size_t>(group) * static_cast<std::size_t>(n);
          data.resize(gk);
          words.resize(gn);
          tx.resize(gn);
          corrected.assign(static_cast<std::size_t>(group), 0);
          for (auto& symbol : data) {
            symbol = static_cast<Gf1024::Element>(stream.UniformInt(Gf1024::kFieldSize));
          }
          outer_.EncodeMany(data, words, scratch);
          // Transmission order: the frames leave through the block
          // interleaver, take BSC noise on the wire, and come back.
          const BlockInterleaver interleaver(group, n);
          interleaver.InterleaveInto(words, tx);
          FlipBscBits(tx, outer_input, stream);
          interleaver.DeinterleaveInto(tx, words);
          outer_.DecodeMany(words, corrected, scratch);
          for (int w = 0; w < group; ++w) {
            if (corrected[static_cast<std::size_t>(w)] == ReedSolomon::kDecodeFailed) {
              ++chunk_failures;
              continue;
            }
            // Check data integrity (guards against miscorrection).
            const auto dw = static_cast<std::ptrdiff_t>(w) * k;
            if (!std::equal(data.begin() + dw, data.begin() + dw + k,
                            words.begin() + static_cast<std::ptrdiff_t>(w) * n)) {
              ++chunk_failures;
            }
          }
          f += static_cast<std::uint64_t>(group);
        }
        return chunk_failures;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  return static_cast<double>(failures) / frames;
}

}  // namespace lightwave::fec
