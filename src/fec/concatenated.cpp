#include "fec/concatenated.h"

#include <cassert>
#include <cmath>

#include "common/math.h"

namespace lightwave::fec {
namespace {

constexpr int kSymbolBits = Gf1024::kBits;

/// log of binomial pmf term for numerical stability at tiny p.
double LogBinomialTerm(int n, int i, double p) {
  return std::lgamma(n + 1.0) - std::lgamma(i + 1.0) - std::lgamma(n - i + 1.0) +
         i * std::log(p) + (n - i) * std::log1p(-p);
}

}  // namespace

OuterCodeStats AnalyzeOuterCode(double pre_fec_ber) {
  OuterCodeStats stats;
  if (pre_fec_ber <= 0.0) return stats;
  const int n = 544;
  const int t = 15;
  const double ps = 1.0 - std::pow(1.0 - pre_fec_ber, kSymbolBits);
  stats.symbol_error_rate = ps;
  // Frame error: more than t of n symbols in error.
  double fer = 0.0;
  double post_symbol_errors = 0.0;  // E[symbol errors | decode failure] * P
  for (int i = t + 1; i <= n; ++i) {
    const double term = std::exp(LogBinomialTerm(n, i, ps));
    fer += term;
    post_symbol_errors += term * i;
    if (term < fer * 1e-18 && i > t + 8) break;  // series converged
  }
  stats.frame_error_rate = std::min(1.0, fer);
  // A failed frame passes its symbol errors through; each bad symbol has on
  // average ~ kSymbolBits * p_bit_in_bad_symbol errored bits. Approximate
  // bits-per-bad-symbol by the conditional expectation of a >=1-error
  // symbol.
  const double bits_per_bad_symbol =
      pre_fec_ber * kSymbolBits / std::max(ps, 1e-300);
  stats.post_fec_ber =
      std::min(1.0, post_symbol_errors * bits_per_bad_symbol / (n * kSymbolBits));
  return stats;
}

double ConcatenatedFec::PostFecBer(double channel_ber, bool inner_enabled) const {
  const double outer_input = inner_enabled ? inner_.Transfer(channel_ber) : channel_ber;
  return AnalyzeOuterCode(outer_input).post_fec_ber;
}

double ConcatenatedFec::ChannelBerThreshold(bool inner_enabled,
                                            double target_post_fec_ber) const {
  double lo = 1e-12, hi = 0.4;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (PostFecBer(mid, inner_enabled) <= target_post_fec_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ConcatenatedFec::MeasureFrameErrorRate(double channel_ber, bool inner_enabled,
                                              int frames, common::Rng& rng) const {
  assert(frames > 0);
  const double outer_input = inner_enabled ? inner_.Transfer(channel_ber) : channel_ber;
  int failures = 0;
  const int k = outer_.k();
  std::vector<Gf1024::Element> data(static_cast<std::size_t>(k));
  for (int f = 0; f < frames; ++f) {
    for (auto& symbol : data) {
      symbol = static_cast<Gf1024::Element>(rng.UniformInt(Gf1024::kFieldSize));
    }
    auto codeword = outer_.Encode(data);
    // Binary-symmetric channel on each of the 10 bits of every symbol.
    for (auto& symbol : codeword) {
      for (int b = 0; b < kSymbolBits; ++b) {
        if (rng.Bernoulli(outer_input)) symbol ^= static_cast<Gf1024::Element>(1 << b);
      }
    }
    const auto outcome = outer_.Decode(codeword);
    if (!outcome.ok()) {
      ++failures;
      continue;
    }
    // Check data integrity (guards against miscorrection).
    for (int i = 0; i < k; ++i) {
      if (outcome.value().codeword[static_cast<std::size_t>(i)] !=
          data[static_cast<std::size_t>(i)]) {
        ++failures;
        break;
      }
    }
  }
  return static_cast<double>(failures) / frames;
}

}  // namespace lightwave::fec
