// Vectorized batch kernels for the Reed-Solomon codec: the two GF(2^10)
// inner loops that dominate every Monte-Carlo FEC evaluation — the encoder
// LFSR and the Horner syndrome sweep — over kLaneWidth codewords in
// lockstep.
//
// Layout. Kernels consume a structure-of-arrays tile: symbol i of lane l
// lives at tile[i * kLaneWidth + l], so one SIMD register holds symbol i of
// every codeword in the batch. Constant multiplies use the bit-plane
// decomposition (Gf1024::MulPlanes): Mul(c, x) == XOR over the set bits b
// of x of Mul(c, 1 << b), evaluated as kBits mask-and-XOR steps per
// register — no gathers, no per-lane table walks. Plane tables arrive
// pre-broadcast (each plane value repeated kLaneWidth times) so vector
// paths load them straight from memory.
//
// Dispatch. Three bit-exact implementations:
//   - kScalar  reference loop, one lane at a time (the determinism anchor)
//   - kSwar    SIMD-within-a-register over uint64_t, 4 lanes per word;
//              portable C++, the only path compiled under
//              -DLIGHTWAVE_SIMD=OFF
//   - kAvx2    256-bit path, all 16 lanes per register; compiled via a
//              target attribute and selected only when CPUID reports AVX2
// Selection happens once per process: the LIGHTWAVE_SIMD environment
// variable ("auto", "scalar", "swar", "avx2") then CPUID. All paths compute
// identical bits — GF arithmetic is exact, so the dispatch choice can never
// change a result, only its speed. Force() pins a path for tests.
#pragma once

#include <cstdint>

namespace lightwave::fec::batch {

/// Codewords per tile. Fixed (not dispatch-dependent) so the SoA layout,
/// chunking, and results are identical on every machine: 16 lanes is one
/// AVX2 register of 10-bit symbols; the SWAR path covers it as 4 uint64
/// words and the scalar path one lane at a time.
inline constexpr int kLaneWidth = 16;

/// Bit planes per constant multiply — GF(2^10) symbols. Mirrors
/// Gf1024::kBits (static_asserted where the tables are built); kept literal
/// here so this header stays free of the field-table machinery.
inline constexpr int kPlaneBits = 10;

enum class Dispatch {
  kScalar,
  kSwar,
  kAvx2,
};

const char* Name(Dispatch dispatch);

/// True when `dispatch` can run on this build + CPU (kScalar/kSwar always;
/// kAvx2 only when compiled in and CPUID agrees).
bool Supported(Dispatch dispatch);

/// The active implementation: a Force() override if set, else the
/// LIGHTWAVE_SIMD environment selection, else the best supported path.
Dispatch Active();

/// Pins the dispatch path (tests proving cross-path bit-exactness).
/// LW_CHECKs that `dispatch` is Supported().
void Force(Dispatch dispatch);

/// Clears a Force() override, returning to automatic selection.
void ResetDispatch();

/// Full LFSR division over a tile: data_tile is k SoA rows of data symbols,
/// planes is the generator bit-plane table laid out
/// planes[((j * kBits) + b) * kLaneWidth + lane] == Mul(g_j, 1 << b)
/// (broadcast across lanes), and rem_tile receives the `parity` remainder
/// rows in low->high coefficient order. Bit-exact with
/// ReedSolomon::EncodeInto on every lane.
void EncodeTile(const std::uint16_t* data_tile, int k, int parity,
                const std::uint16_t* planes, std::uint16_t* rem_tile);

/// Horner syndrome sweep over a tile: word_tile is n SoA rows of received
/// symbols, planes holds the alpha^{j+1} bit-plane rows
/// planes[((j * kBits) + b) * kLaneWidth + lane] == Mul(alpha^{j+1}, 1 << b)
/// for j in [0, two_t), and syn_tile receives the two_t syndrome rows.
/// Bit-exact with ReedSolomon's scalar syndrome kernel on every lane.
void SyndromeTile(const std::uint16_t* word_tile, int n, int two_t,
                  const std::uint16_t* planes, std::uint16_t* syn_tile);

}  // namespace lightwave::fec::batch
