// The proprietary ultra-low-latency soft-decision inner FEC (§3.3.2): a
// short code decoded with soft information and concatenated inside the
// standard KP4 outer code. A variant was adopted by IEEE 802.3dj. We model
// it as a BER transfer function calibrated to the published operating point:
// a 1.6 dB receiver-sensitivity improvement at the KP4 threshold (Fig. 12)
// and < 20 ns of added latency at 200 Gb/s.
#pragma once

namespace lightwave::fec {

struct InnerCodeSpec {
  /// Code rate (overhead steals line rate; the custom transceivers absorb it
  /// in the lane rate budget).
  double rate = 0.94;
  /// Dominant error-correcting behaviour: residual errors require at least
  /// `min_weight` channel errors inside one inner block.
  int min_weight = 2;
  /// Multiplicity coefficient of the transfer function (see Transfer()):
  /// roughly the number of minimum-weight error patterns per block that the
  /// soft decoder confuses. Calibrated so the concatenated code reproduces
  /// the published 1.6 dB sensitivity gain at -32 dB MPI (Fig. 12).
  double coefficient = 140.0;
  /// Decode latency in ns when running at the reference rate.
  double latency_ns_at_reference = 18.0;
  double reference_rate_gbps = 200.0;
};

class InnerCode {
 public:
  InnerCode() : InnerCode(InnerCodeSpec{}) {}
  explicit InnerCode(InnerCodeSpec spec) : spec_(spec) {}

  const InnerCodeSpec& spec() const { return spec_; }

  /// Output BER as a function of channel (input) BER:
  ///   p_out = min(p_in, coefficient * p_in^min_weight)
  /// The quadratic regime is what produces the published 1.6 dB gain at the
  /// KP4 threshold; at very high channel BER the code saturates and passes
  /// errors through.
  double Transfer(double channel_ber) const;

  /// Largest channel BER for which the inner decoder output meets
  /// `target_output_ber` (inverse of Transfer, bisection).
  double MaxChannelBer(double target_output_ber) const;

  /// Added latency at the given line rate; scales inversely with rate
  /// (deeper parallelism at higher rates keeps the wall-clock similar, so we
  /// model latency as constant-per-block with block time ~ 1/rate).
  double LatencyNs(double line_rate_gbps) const;

 private:
  InnerCodeSpec spec_;
};

}  // namespace lightwave::fec
