#include "fec/interleaver.h"

#include <cassert>

namespace lightwave::fec {

BlockInterleaver::BlockInterleaver(int depth, int width) : depth_(depth), width_(width) {
  assert(depth >= 1 && width >= 1);
}

void BlockInterleaver::InterleaveInto(std::span<const Gf1024::Element> input,
                                      std::span<Gf1024::Element> output) const {
  assert(input.size() == BlockSymbols());
  assert(output.size() == BlockSymbols());
  assert(input.data() + input.size() <= output.data() ||
         output.data() + output.size() <= input.data());
  std::size_t k = 0;
  for (int col = 0; col < width_; ++col) {
    for (int row = 0; row < depth_; ++row) {
      output[k++] = input[static_cast<std::size_t>(row) * width_ + col];
    }
  }
}

void BlockInterleaver::DeinterleaveInto(std::span<const Gf1024::Element> input,
                                        std::span<Gf1024::Element> output) const {
  assert(input.size() == BlockSymbols());
  assert(output.size() == BlockSymbols());
  assert(input.data() + input.size() <= output.data() ||
         output.data() + output.size() <= input.data());
  std::size_t k = 0;
  for (int col = 0; col < width_; ++col) {
    for (int row = 0; row < depth_; ++row) {
      output[static_cast<std::size_t>(row) * width_ + col] = input[k++];
    }
  }
}

std::vector<Gf1024::Element> BlockInterleaver::Interleave(
    const std::vector<Gf1024::Element>& input) const {
  std::vector<Gf1024::Element> out(input.size());
  InterleaveInto(input, out);
  return out;
}

std::vector<Gf1024::Element> BlockInterleaver::Deinterleave(
    const std::vector<Gf1024::Element>& input) const {
  std::vector<Gf1024::Element> out(input.size());
  DeinterleaveInto(input, out);
  return out;
}

int BlockInterleaver::WorstPerRowHits(int burst) const {
  assert(burst >= 0);
  // A contiguous burst in transmission order cycles through the rows: each
  // full cycle of `depth` hits every row once.
  return burst / depth_ + (burst % depth_ != 0 ? 1 : 0);
}

}  // namespace lightwave::fec
