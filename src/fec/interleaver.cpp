#include "fec/interleaver.h"

#include <cassert>

namespace lightwave::fec {

BlockInterleaver::BlockInterleaver(int depth, int width) : depth_(depth), width_(width) {
  assert(depth >= 1 && width >= 1);
}

std::vector<Gf1024::Element> BlockInterleaver::Interleave(
    const std::vector<Gf1024::Element>& input) const {
  assert(input.size() == BlockSymbols());
  std::vector<Gf1024::Element> out(input.size());
  std::size_t k = 0;
  for (int col = 0; col < width_; ++col) {
    for (int row = 0; row < depth_; ++row) {
      out[k++] = input[static_cast<std::size_t>(row) * width_ + col];
    }
  }
  return out;
}

std::vector<Gf1024::Element> BlockInterleaver::Deinterleave(
    const std::vector<Gf1024::Element>& input) const {
  assert(input.size() == BlockSymbols());
  std::vector<Gf1024::Element> out(input.size());
  std::size_t k = 0;
  for (int col = 0; col < width_; ++col) {
    for (int row = 0; row < depth_; ++row) {
      out[static_cast<std::size_t>(row) * width_ + col] = input[k++];
    }
  }
  return out;
}

int BlockInterleaver::WorstPerRowHits(int burst) const {
  assert(burst >= 0);
  // A contiguous burst in transmission order cycles through the rows: each
  // full cycle of `depth` hits every row once.
  return burst / depth_ + (burst % depth_ != 0 ? 1 : 0);
}

}  // namespace lightwave::fec
