#include "fec/inner_code.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lightwave::fec {

double InnerCode::Transfer(double channel_ber) const {
  assert(channel_ber >= 0.0 && channel_ber <= 0.5);
  const double corrected =
      spec_.coefficient * std::pow(channel_ber, static_cast<double>(spec_.min_weight));
  return std::min(channel_ber, corrected);
}

double InnerCode::MaxChannelBer(double target_output_ber) const {
  assert(target_output_ber > 0.0 && target_output_ber < 0.5);
  double lo = 0.0, hi = 0.5;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Transfer(mid) <= target_output_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double InnerCode::LatencyNs(double line_rate_gbps) const {
  assert(line_rate_gbps > 0.0);
  return spec_.latency_ns_at_reference * (spec_.reference_rate_gbps / line_rate_gbps);
}

}  // namespace lightwave::fec
