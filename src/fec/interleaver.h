// Block symbol interleaver. Concatenated links interleave outer-code
// symbols across the stream so that a burst out of the inner decoder (a
// whole failed inner block) lands as isolated symbol errors in many KP4
// frames instead of overwhelming one frame's t = 15 budget. Rows = depth
// (number of frames sharing a burst), columns = frame length.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fec/gf.h"

namespace lightwave::fec {

class BlockInterleaver {
 public:
  /// `depth` rows by `width` columns of 10-bit symbols. Writing happens
  /// row-major (consecutive codeword symbols fill a row); transmission
  /// happens column-major, so a channel burst of length b hits at most
  /// ceil(b / depth) symbols of any one row.
  BlockInterleaver(int depth, int width);

  int depth() const { return depth_; }
  int width() const { return width_; }
  std::size_t BlockSymbols() const {
    return static_cast<std::size_t>(depth_) * static_cast<std::size_t>(width_);
  }

  /// Input: depth consecutive codewords of `width` symbols, concatenated.
  /// Output: the column-major transmission order. Size must equal
  /// BlockSymbols().
  std::vector<Gf1024::Element> Interleave(const std::vector<Gf1024::Element>& input) const;

  /// Exact inverse of Interleave.
  std::vector<Gf1024::Element> Deinterleave(
      const std::vector<Gf1024::Element>& input) const;

  /// Allocation-free Interleave into a caller-provided buffer. Both spans
  /// must be BlockSymbols() long and must not overlap. Note that for
  /// depth == batch::kLaneWidth and width == n, the column-major output is
  /// exactly the SoA tile layout the batch RS kernels consume — the Monte-
  /// Carlo harness transposes through this call.
  void InterleaveInto(std::span<const Gf1024::Element> input,
                      std::span<Gf1024::Element> output) const;

  /// Allocation-free exact inverse of InterleaveInto; same size/aliasing
  /// requirements.
  void DeinterleaveInto(std::span<const Gf1024::Element> input,
                        std::span<Gf1024::Element> output) const;

  /// Worst-case symbols of one row hit by a channel burst of `burst` symbols.
  int WorstPerRowHits(int burst) const;

 private:
  int depth_;
  int width_;
};

}  // namespace lightwave::fec
