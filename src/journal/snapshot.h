// Snapshots: a point-in-time serialization of the control-plane state
// (FabricController + SliceScheduler export their state through the hooks in
// ctrl/controller.h and core/scheduler.h) tagged with the journal sequence
// number it includes. Recovery = snapshot + WAL suffix; after a snapshot the
// log prefix it covers is compacted away.
//
// On-device layout, little-endian:
//
//   [magic u32 "LWSN"][version u16][last_included_seq u64]
//   [state length u32][state bytes][crc32c u32]
//
// The trailing CRC32C covers every preceding byte, so any single bit flip —
// header, sequence tag, or state — is rejected as corrupt. Writes replace
// the whole storage atomically (the simulated equivalent of writing
// snapshot.tmp and renaming over the old file).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "journal/storage.h"

namespace lightwave::journal {

inline constexpr std::uint32_t kSnapshotMagic = 0x4E53574Cu;  // "LWSN" LE
inline constexpr std::uint16_t kSnapshotVersion = 1;

struct Snapshot {
  std::uint64_t last_included_seq = 0;
  std::vector<std::uint8_t> state;
};

class SnapshotWriter {
 public:
  /// Serializes and atomically replaces the snapshot in `storage`.
  static common::Status Write(Storage& storage, std::uint64_t last_included_seq,
                              const std::vector<std::uint8_t>& state);
};

class SnapshotReader {
 public:
  /// Loads the snapshot. kNotFound when the storage is empty (a fresh
  /// deployment, or one that never reached its first snapshot); kInternal
  /// when the bytes are truncated or corrupt — since snapshot writes are
  /// atomic, that means media corruption, and callers surface it rather than
  /// replaying a log whose prefix was already compacted away. Never crashes
  /// on hostile bytes.
  static common::Result<Snapshot> Read(const Storage& storage);
};

}  // namespace lightwave::journal
