#include "journal/snapshot.h"

#include <string>

#include "journal/wal.h"

namespace lightwave::journal {

namespace {

constexpr std::uint64_t kFixedBytes = 4 + 2 + 8 + 4;  // magic, version, seq, len

void PutU16(std::uint16_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t ReadU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

common::Status SnapshotWriter::Write(Storage& storage, std::uint64_t last_included_seq,
                                     const std::vector<std::uint8_t>& state) {
  std::vector<std::uint8_t> blob;
  blob.reserve(static_cast<std::size_t>(kFixedBytes) + state.size() + 4);
  PutU32(kSnapshotMagic, &blob);
  PutU16(kSnapshotVersion, &blob);
  PutU64(last_included_seq, &blob);
  PutU32(static_cast<std::uint32_t>(state.size()), &blob);
  blob.insert(blob.end(), state.begin(), state.end());
  PutU32(Crc32c(blob.data(), blob.size()), &blob);
  // Atomic + durable: over FileStorage this stages into a temp file and
  // renames, so a crash mid-write leaves the PREVIOUS snapshot intact —
  // never a half-written one (which Read would reject as corrupt, a hard
  // recovery error).
  storage.ReplaceContents(blob.data(), blob.size());
  return common::Status::Ok();
}

common::Result<Snapshot> SnapshotReader::Read(const Storage& storage) {
  const std::uint64_t total = storage.size();
  if (total == 0) return common::NotFound("no snapshot present");
  if (total < kFixedBytes + 4) {
    return common::Internal("snapshot truncated: " + std::to_string(total) + " bytes");
  }
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(total));
  storage.ReadAt(0, blob.size(), blob.data());
  const std::uint32_t stored_crc = ReadU32(blob.data() + blob.size() - 4);
  if (Crc32c(blob.data(), blob.size() - 4) != stored_crc) {
    return common::Internal("snapshot crc mismatch");
  }
  if (ReadU32(blob.data()) != kSnapshotMagic) {
    return common::Internal("snapshot magic mismatch");
  }
  const std::uint16_t version = ReadU16(blob.data() + 4);
  if (version != kSnapshotVersion) {
    return common::Internal("unsupported snapshot version " + std::to_string(version));
  }
  Snapshot snapshot;
  snapshot.last_included_seq = ReadU64(blob.data() + 6);
  const std::uint32_t state_len = ReadU32(blob.data() + 14);
  if (kFixedBytes + state_len + 4 != total) {
    return common::Internal("snapshot length field disagrees with storage size");
  }
  snapshot.state.assign(blob.begin() + kFixedBytes, blob.end() - 4);
  return snapshot;
}

}  // namespace lightwave::journal
