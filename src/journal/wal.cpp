#include "journal/wal.h"

#include <array>
#include <cstring>

#include "common/check.h"
#include "telemetry/hub.h"

namespace lightwave::journal {

namespace {

std::array<std::uint32_t, 256> BuildCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::uint32_t Crc32cSw(std::uint32_t state, const std::uint8_t* data, std::size_t size) {
  static const auto table = BuildCrc32cTable();
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ data[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

#if defined(__x86_64__)
// The SSE4.2 crc32 instruction computes exactly this reflected CRC-32C
// (Castagnoli, polynomial 0x82F63B78), 8 bytes per issue instead of one
// table lookup per byte. The known-vector test in journal_test pins both
// paths to the same check values.
__attribute__((target("sse4.2"))) std::uint32_t Crc32cHw(std::uint32_t state,
                                                         const std::uint8_t* data,
                                                         std::size_t size) {
  while (size >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, data, sizeof(chunk));
    state = static_cast<std::uint32_t>(
        __builtin_ia32_crc32di(state, chunk));
    data += 8;
    size -= 8;
  }
  while (size > 0) {
    state = __builtin_ia32_crc32qi(state, *data++);
    --size;
  }
  return state;
}
#endif

std::uint32_t Crc32cRaw(std::uint32_t state, const std::uint8_t* data, std::size_t size) {
#if defined(__x86_64__)
  static const bool have_sse42 = __builtin_cpu_supports("sse4.2");
  if (have_sse42) return Crc32cHw(state, data, size);
#endif
  return Crc32cSw(state, data, size);
}

// Record header: [length u32][crc32c u32]; the length counts the sequence
// field plus the payload, so the smallest legal record body is 8 bytes.
constexpr std::uint64_t kHeaderBytes = 8;
constexpr std::uint64_t kSeqBytes = 8;

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t Crc32cInit() { return 0xFFFFFFFFu; }

std::uint32_t Crc32cExtend(std::uint32_t state, const std::uint8_t* data,
                           std::size_t size) {
  return Crc32cRaw(state, data, size);
}

std::uint32_t Crc32cFinish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t Crc32c(const std::uint8_t* data, std::size_t size) {
  return Crc32cFinish(Crc32cExtend(Crc32cInit(), data, size));
}

const char* ToString(WalTailKind kind) {
  switch (kind) {
    case WalTailKind::kClean: return "clean";
    case WalTailKind::kTruncated: return "truncated";
    case WalTailKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

WalScan Wal::Scan(const Storage& storage) {
  WalScan scan;
  const std::uint64_t total = storage.size();
  std::uint64_t offset = 0;
  // Every early return below is a torn tail: records up to `offset` are
  // intact, the bytes from `offset` on are unusable. The scan reports the
  // defect instead of crashing — hostile input is expected here (that is
  // what a crash mid-append produces). The tail_kind split: an INCOMPLETE
  // final record (header or body cut off by EOF, zero-filled tail) is the
  // expected shape of a crash mid-append or inside an open sync window,
  // while a structurally complete but damaged record is corruption.
  while (offset < total) {
    const std::uint64_t remaining = total - offset;
    if (remaining < kHeaderBytes + kSeqBytes) {
      scan.tail = common::Internal("torn tail: truncated record header at offset " +
                                   std::to_string(offset));
      scan.tail_kind = WalTailKind::kTruncated;
      scan.valid_bytes = offset;
      return scan;
    }
    std::array<std::uint8_t, kHeaderBytes> header{};
    storage.ReadAt(offset, header.size(), header.data());
    const std::uint64_t length = ReadU32(header.data());
    const std::uint32_t stored_crc = ReadU32(header.data() + 4);
    if (length == 0 && stored_crc == 0) {
      // A zero header is never a legal frame (length >= 8). Some
      // filesystems extend a file with zero pages on a crash between the
      // size update and the data flush — but that artifact zeroes every
      // byte to EOF and only lands above the durable frontier. A zeroed
      // header INSIDE the durable prefix followed by nonzero bytes means
      // stable bytes were damaged: that is the corruption alarm, not the
      // expected truncation artifact.
      bool rest_zero = true;
      std::vector<std::uint8_t> rest(static_cast<std::size_t>(remaining - kHeaderBytes));
      if (!rest.empty()) storage.ReadAt(offset + kHeaderBytes, rest.size(), rest.data());
      for (const std::uint8_t byte : rest) {
        if (byte != 0) {
          rest_zero = false;
          break;
        }
      }
      if (offset >= storage.durable_size() || rest_zero) {
        scan.tail = common::Internal("torn tail: zero-filled tail at offset " +
                                     std::to_string(offset));
        scan.tail_kind = WalTailKind::kTruncated;
      } else {
        scan.tail = common::Internal(
            "torn tail: zeroed record header amid nonzero durable bytes at offset " +
            std::to_string(offset));
        scan.tail_kind = WalTailKind::kCorrupt;
      }
      scan.valid_bytes = offset;
      return scan;
    }
    if (length < kSeqBytes || length > kMaxRecordBytes) {
      scan.tail = common::Internal("torn tail: implausible record length " +
                                   std::to_string(length) + " at offset " +
                                   std::to_string(offset));
      scan.tail_kind = WalTailKind::kCorrupt;
      scan.valid_bytes = offset;
      return scan;
    }
    if (length > remaining - kHeaderBytes) {
      scan.tail = common::Internal("torn tail: record length " + std::to_string(length) +
                                   " overruns the log at offset " + std::to_string(offset));
      scan.tail_kind = WalTailKind::kTruncated;
      scan.valid_bytes = offset;
      return scan;
    }
    std::vector<std::uint8_t> body(static_cast<std::size_t>(length));
    storage.ReadAt(offset + kHeaderBytes, body.size(), body.data());
    // The CRC covers the length field too: a bit flip that only changes the
    // length cannot re-frame the log into a different valid record stream.
    std::uint32_t crc = Crc32cExtend(Crc32cInit(), header.data(), 4);
    crc = Crc32cFinish(Crc32cExtend(crc, body.data(), body.size()));
    if (crc != stored_crc) {
      scan.tail = common::Internal("torn tail: crc mismatch at offset " +
                                   std::to_string(offset));
      scan.tail_kind = WalTailKind::kCorrupt;
      scan.valid_bytes = offset;
      return scan;
    }
    const std::uint64_t seq = ReadU64(body.data());
    if (!scan.records.empty() && seq != scan.records.back().seq + 1) {
      scan.tail = common::Internal(
          "torn tail: sequence discontinuity (" + std::to_string(scan.records.back().seq) +
          " -> " + std::to_string(seq) + ") at offset " + std::to_string(offset));
      scan.tail_kind = WalTailKind::kCorrupt;
      scan.valid_bytes = offset;
      return scan;
    }
    scan.records.push_back(WalRecord{
        .seq = seq,
        .payload = std::vector<std::uint8_t>(body.begin() + kSeqBytes, body.end())});
    offset += kHeaderBytes + length;
  }
  scan.valid_bytes = offset;
  return scan;
}

Wal::Wal(Storage& storage) : storage_(storage) {
  recovery_scan_ = Scan(storage_);
  if (recovery_scan_.valid_bytes < storage_.size()) {
    tail_truncated_bytes_ = storage_.size() - recovery_scan_.valid_bytes;
    reclaimed_bytes_ += tail_truncated_bytes_;
    // Durable under every sync policy: the repaired tail must not
    // resurrect after the next crash.
    storage_.Truncate(recovery_scan_.valid_bytes);
  }
  if (!recovery_scan_.records.empty()) {
    next_seq_ = recovery_scan_.records.back().seq + 1;
  }
}

Wal::~Wal() { StopBackgroundCompaction(); }

void Wal::FrameRecord(std::uint64_t seq, const std::vector<std::uint8_t>& payload,
                      std::vector<std::uint8_t>* out) const {
  const std::uint64_t length = kSeqBytes + payload.size();
  const std::size_t base = out->size();
  out->resize(base + static_cast<std::size_t>(kHeaderBytes + length));
  std::uint8_t* p = out->data() + base;
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(length >> (8 * i));
  // p[4..7] is the CRC slot, patched below once the body is in place.
  for (int i = 0; i < 8; ++i) {
    p[kHeaderBytes + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  if (!payload.empty()) {
    std::memcpy(p + kHeaderBytes + kSeqBytes, payload.data(), payload.size());
  }
  std::uint32_t crc = Crc32cExtend(Crc32cInit(), p, 4);
  crc = Crc32cFinish(Crc32cExtend(crc, p + kHeaderBytes, static_cast<std::size_t>(length)));
  for (int i = 0; i < 4; ++i) {
    p[4 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

common::Result<std::uint64_t> Wal::Append(const std::vector<std::uint8_t>& payload) {
  const std::uint64_t length = kSeqBytes + payload.size();
  if (length > kMaxRecordBytes) {
    return common::InvalidArgument("journal record of " + std::to_string(payload.size()) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxRecordBytes) + "-byte record limit");
  }
  const std::uint64_t seq = next_seq_++;
  std::vector<std::uint8_t> frame;
  FrameRecord(seq, payload, &frame);
  if (background_compaction()) {
    lw::MutexLock lock(compact_mu_);
    storage_.Append(frame.data(), frame.size());
    storage_.Sync();
  } else {
    storage_.Append(frame.data(), frame.size());
    storage_.Sync();
  }
  ++appended_records_;
  appended_bytes_ += frame.size();
  if (append_counter_ != nullptr) append_counter_->Inc();
  if (bytes_counter_ != nullptr) bytes_counter_->Inc(frame.size());
  return seq;
}

common::Result<std::uint64_t> Wal::AppendBatch(
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  if (payloads.empty()) return common::InvalidArgument("empty journal batch");
  // Validate before framing: an oversized payload must not leave a partial
  // batch in the storage or burn sequence numbers.
  for (const auto& payload : payloads) {
    if (kSeqBytes + payload.size() > kMaxRecordBytes) {
      return common::InvalidArgument(
          "journal record of " + std::to_string(payload.size()) +
          " bytes exceeds the " + std::to_string(kMaxRecordBytes) +
          "-byte record limit");
    }
  }
  const std::uint64_t first_seq = next_seq_;
  batch_scratch_.clear();
  for (const auto& payload : payloads) FrameRecord(next_seq_++, payload, &batch_scratch_);
  // One device append, one sync: the whole batch commits at one fsync
  // boundary (this Sync is where kGroupCommit pays its single fsync).
  if (background_compaction()) {
    lw::MutexLock lock(compact_mu_);
    storage_.Append(batch_scratch_.data(), batch_scratch_.size());
    storage_.Sync();
  } else {
    storage_.Append(batch_scratch_.data(), batch_scratch_.size());
    storage_.Sync();
  }
  appended_records_ += payloads.size();
  appended_bytes_ += batch_scratch_.size();
  ++batch_appends_;
  if (append_counter_ != nullptr) append_counter_->Inc(payloads.size());
  if (bytes_counter_ != nullptr) bytes_counter_->Inc(batch_scratch_.size());
  return first_seq;
}

std::uint64_t Wal::CutOffset(const std::uint8_t* data, std::uint64_t limit,
                             std::uint64_t upto_seq) {
  std::uint64_t offset = 0;
  while (offset + kHeaderBytes + kSeqBytes <= limit) {
    const std::uint64_t length = ReadU32(data + offset);
    const std::uint64_t seq = ReadU64(data + offset + kHeaderBytes);
    // Appends always leave the prefix boundary-valid; a malformed frame
    // here means the walk itself is off the rails, so stop compacting
    // rather than rewrite garbage.
    LW_DCHECK(length >= kSeqBytes && offset + kHeaderBytes + length <= limit)
        << "compaction walked off a record boundary at offset " << offset;
    if (length < kSeqBytes || offset + kHeaderBytes + length > limit) break;
    if (seq > upto_seq) break;
    offset += kHeaderBytes + length;
  }
  return offset;
}

common::Status Wal::Compact(std::uint64_t upto_seq) {
  if (background_compaction()) {
    // Off the serve path: record the floor and let the worker do the
    // rewrite. Floors are monotone (snapshots only move forward), so
    // coalescing concurrent requests into the max is lossless.
    lw::MutexLock lock(compact_mu_);
    has_pending_ = true;
    if (upto_seq > pending_floor_) pending_floor_ = upto_seq;
    compact_cv_.NotifyAll();
    return common::Status::Ok();
  }
  CompactNow(upto_seq);
  return common::Status::Ok();
}

void Wal::CompactNow(std::uint64_t upto_seq) {
  const std::uint64_t before = storage_.size();
  if (before != 0) {
    if (upto_seq >= next_seq_ - 1) {
      // The floor covers every appended record (the common snapshot
      // cadence): drop the log without rescanning it — the last appended
      // sequence is next_seq_ - 1 by construction. Truncation is durable.
      storage_.Truncate(0);
    } else {
      std::vector<std::uint8_t> log(static_cast<std::size_t>(before));
      storage_.ReadAt(0, log.size(), log.data());
      const std::uint64_t cut = CutOffset(log.data(), before, upto_seq);
      if (cut > 0) {
        // Rewrite = keep the raw suffix bytes verbatim (framing is
        // position-independent) and install them atomically: over files
        // the old log stays intact until the rename, so a crash at any
        // byte of the rewrite recovers from the uncompacted log.
        storage_.ReplaceContents(log.data() + cut,
                                 static_cast<std::size_t>(before - cut));
      }
    }
  }
  ++compactions_;
  if (compaction_counter_ != nullptr) compaction_counter_->Inc();
  if (before > storage_.size()) {
    reclaimed_bytes_ += before - storage_.size();
    if (reclaimed_counter_ != nullptr) reclaimed_counter_->Inc(before - storage_.size());
  }
}

void Wal::StartBackgroundCompaction() {
  if (compactor_.joinable()) return;
  {
    lw::MutexLock lock(compact_mu_);
    stop_compactor_ = false;
  }
  compactor_ = std::thread([this] { CompactorLoop(); });
}

void Wal::StopBackgroundCompaction() {
  if (!compactor_.joinable()) return;
  {
    lw::MutexLock lock(compact_mu_);
    stop_compactor_ = true;
  }
  compact_cv_.NotifyAll();
  compactor_.join();
}

void Wal::WaitForCompaction() {
  if (!compactor_.joinable()) return;
  lw::MutexLock lock(compact_mu_);
  while (has_pending_ || compacting_) compact_cv_.Wait(compact_mu_);
}

void Wal::CompactorLoop() {
  while (true) {
    std::uint64_t floor = 0;
    {
      lw::MutexLock lock(compact_mu_);
      while (!has_pending_ && !stop_compactor_) compact_cv_.Wait(compact_mu_);
      if (!has_pending_) return;  // stop requested and fully drained
      floor = pending_floor_;
      has_pending_ = false;
      pending_floor_ = 0;
      compacting_ = true;
    }
    // Freeze the prefix and COPY it out under the lock, then walk the copy
    // without it. The storage itself is never read unlocked: ReadAt
    // consults mutable size bookkeeping on FileStorage and the backing
    // vector on MemStorage, both of which a concurrent Append mutates.
    // The copy is one bulk read — cheaper than the fsync every append
    // already pays under this lock — so the serve path only blocks for
    // that and the brief install below, never for the record walk.
    std::uint64_t frozen = 0;
    {
      lw::MutexLock lock(compact_mu_);
      frozen = storage_.size();
    }
    // Allocate off the lock; appends only grow the storage, so [0, frozen)
    // stays readable when we re-take it.
    std::vector<std::uint8_t> prefix(static_cast<std::size_t>(frozen));
    {
      lw::MutexLock lock(compact_mu_);
      if (frozen > 0) storage_.ReadAt(0, prefix.size(), prefix.data());
    }
    const std::uint64_t cut = CutOffset(prefix.data(), frozen, floor);
    {
      lw::MutexLock lock(compact_mu_);
      const std::uint64_t before = storage_.size();
      if (cut > 0) {
        // Keep everything after the cut, including records appended while
        // the scan ran (their seqs are all > floor by monotonicity).
        std::vector<std::uint8_t> keep(static_cast<std::size_t>(before - cut));
        if (!keep.empty()) storage_.ReadAt(cut, keep.size(), keep.data());
        storage_.ReplaceContents(keep.data(), keep.size());
      }
      ++compactions_;
      if (compaction_counter_ != nullptr) compaction_counter_->Inc();
      if (before > storage_.size()) {
        reclaimed_bytes_ += before - storage_.size();
        if (reclaimed_counter_ != nullptr) {
          reclaimed_counter_->Inc(before - storage_.size());
        }
      }
      compacting_ = false;
    }
    compact_cv_.NotifyAll();
  }
}

void Wal::SetNextSeq(std::uint64_t next_seq) {
  if (next_seq > next_seq_) next_seq_ = next_seq;
}

void Wal::AttachTelemetry(telemetry::Hub* hub) {
  telemetry::Counter* bytes = nullptr;
  telemetry::Counter* appends = nullptr;
  telemetry::Counter* compactions = nullptr;
  telemetry::Counter* reclaimed = nullptr;
  if (hub != nullptr) {
    // Resolve the counters before taking compact_mu_ (GetCounter locks the
    // registry; keep the two locks unnested).
    auto& metrics = hub->metrics();
    bytes = &metrics.GetCounter("lightwave_journal_bytes_total");
    appends = &metrics.GetCounter("lightwave_journal_appends_total");
    compactions = &metrics.GetCounter("lightwave_journal_compactions_total");
    reclaimed = &metrics.GetCounter("lightwave_journal_reclaimed_bytes_total");
  }
  // The background worker dereferences the compaction counters under
  // compact_mu_; swapping under the same lock makes attach/detach safe
  // while it runs. The append-path counters are serve-path state, already
  // covered by the Wal's external-serialization contract.
  lw::MutexLock lock(compact_mu_);
  bytes_counter_ = bytes;
  append_counter_ = appends;
  compaction_counter_ = compactions;
  reclaimed_counter_ = reclaimed;
}

}  // namespace lightwave::journal
