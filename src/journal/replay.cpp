#include "journal/replay.h"

#include <chrono>

#include "telemetry/hub.h"

namespace lightwave::journal {

common::Result<RecoveryStats> Replay(const Storage& snapshot_storage, Wal& wal,
                                     const SnapshotApplier& apply_snapshot,
                                     const RecordApplier& apply_record,
                                     telemetry::Hub* hub) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats stats;

  auto snapshot = SnapshotReader::Read(snapshot_storage);
  if (snapshot.ok()) {
    stats.snapshot_loaded = true;
    stats.snapshot_seq = snapshot.value().last_included_seq;
    if (common::Status applied = apply_snapshot(snapshot.value()); !applied.ok()) {
      return applied.error();
    }
    // A fully compacted log knows nothing about the sequence numbers the
    // snapshot covers; fast-forward so fresh appends stay monotone.
    wal.SetNextSeq(stats.snapshot_seq + 1);
  } else if (snapshot.error().code != common::Error::Code::kNotFound) {
    return snapshot.error();
  }

  const WalScan& scan = wal.recovery_scan();
  stats.records_scanned = scan.records.size();
  stats.torn_bytes_discarded = wal.tail_truncated_bytes();
  stats.wal_clean = scan.tail.ok();
  if (!stats.wal_clean) {
    stats.tail_note = scan.tail.error().message;
    if (scan.tail_kind == WalTailKind::kCorrupt) {
      stats.tail_corruptions = 1;
    } else {
      stats.tail_truncations = 1;
    }
  }
  for (const WalRecord& record : scan.records) {
    if (record.seq <= stats.snapshot_seq) {
      ++stats.records_skipped;
      continue;
    }
    if (common::Status applied = apply_record(record); !applied.ok()) {
      return applied.error();
    }
    ++stats.records_replayed;
  }

  if (hub != nullptr) {
    auto& metrics = hub->metrics();
    metrics.GetCounter("lightwave_journal_recoveries_total").Inc();
    if (stats.tail_truncations > 0) {
      metrics.GetCounter("lightwave_journal_tail_truncated_total")
          .Inc(stats.tail_truncations);
    }
    if (stats.tail_corruptions > 0) {
      metrics.GetCounter("lightwave_journal_tail_corrupt_total")
          .Inc(stats.tail_corruptions);
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    metrics.GetHistogram("lightwave_journal_recovery_latency_ms").Observe(ms);
  }
  return stats;
}

}  // namespace lightwave::journal
