// Deterministic recovery: rebuilt state = snapshot + WAL suffix. Replay
// loads the snapshot (if any), fast-forwards the log's sequence counter past
// it, and hands every journal record with seq > snapshot_seq to the caller's
// applier in sequence order. Exactly-once is keyed purely on sequence
// numbers: records the snapshot already includes are skipped, never
// re-applied, and the counter survives compaction, so the same command can
// never be applied twice no matter where the crash landed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "journal/snapshot.h"
#include "journal/wal.h"

namespace lightwave::telemetry {
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::journal {

struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t records_scanned = 0;
  std::uint64_t records_replayed = 0;
  /// Records the snapshot already covered (seq <= snapshot_seq) — the
  /// exactly-once guard in action.
  std::uint64_t records_skipped = 0;
  std::uint64_t torn_bytes_discarded = 0;
  bool wal_clean = true;
  /// Tear diagnosis when !wal_clean (informational; a torn tail is an
  /// expected crash artifact, not a replay failure).
  std::string tail_note;
  /// The split tear diagnosis (summed across shards by Router::RecoverAll):
  /// `tail_truncations` counts clean mid-sync-window EOFs — an incomplete
  /// final record, the EXPECTED artifact of a crash mid-append or of the
  /// kGroupCommit/kPeriodic policies losing an unsynced tail; it pages
  /// nobody. `tail_corruptions` counts damage to bytes that were supposedly
  /// stable (CRC mismatch, implausible length, sequence discontinuity) —
  /// that one is an alarm. Mirrored to telemetry as
  /// lightwave_journal_tail_{truncated,corrupt}_total.
  std::uint64_t tail_truncations = 0;
  std::uint64_t tail_corruptions = 0;
};

using SnapshotApplier = std::function<common::Status(const Snapshot&)>;
using RecordApplier = std::function<common::Status(const WalRecord&)>;

/// Rebuilds state from `snapshot_storage` plus the suffix of `wal` (which
/// must be freshly opened over its durable storage, so its recovery scan
/// reflects this crash). `apply_snapshot` installs the snapshot state;
/// `apply_record` applies one journaled command. Errors from either applier
/// abort the replay. A corrupt snapshot is a hard error: the log prefix it
/// covered is gone, so nothing can substitute for it. Increments
/// lightwave_journal_recoveries_total and observes the wall-clock
/// lightwave_journal_recovery_latency_ms histogram on `hub`.
common::Result<RecoveryStats> Replay(const Storage& snapshot_storage, Wal& wal,
                                     const SnapshotApplier& apply_snapshot,
                                     const RecordApplier& apply_record,
                                     telemetry::Hub* hub = nullptr);

}  // namespace lightwave::journal
