// Crash-realistic failure injection over any Storage: models what a real
// power cut does to a file — the synced prefix survives, the unsynced tail
// vanishes, and the final in-flight append may tear at ANY byte. The
// wrapper tracks its own durable frontier (advanced per its sync mode, not
// the base device's — so the crash matrix can model kGroupCommit/kPeriodic
// semantics deterministically over MemStorage or FileStorage alike) and
// applies the damage through the base device's own durable Truncate, after
// which recovery opens the base exactly as it would after a genuine crash.
//
//   FaultyStorage faulty(base, FaultyStorage::SyncMode::kOnSync);
//   Wal wal(faulty);                      // serve path writes through it
//   ... appends, syncs ...
//   faulty.CrashTearingFinalAppend(k);    // power cut k bytes into the tail
//   Wal recovered(base);                  // recovery sees the torn log
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "journal/storage.h"

namespace lightwave::journal {

class FaultyStorage final : public Storage {
 public:
  /// When the wrapper's durable frontier advances:
  ///   kOnAppend  every append is instantly durable (kEveryAppend policy);
  ///   kOnSync    a Sync() call makes everything written durable (the
  ///              fsync-at-the-Wal-boundary of kGroupCommit);
  ///   kNever     syncs are ignored — models the open kPeriodic window,
  ///              where a crash can take back everything since the last
  ///              real fsync.
  enum class SyncMode : std::uint8_t { kOnAppend, kOnSync, kNever };

  explicit FaultyStorage(Storage& base, SyncMode mode = SyncMode::kOnSync)
      : base_(base), mode_(mode), frontier_(base.size()) {}

  std::uint64_t size() const override { return base_.size(); }

  void Append(const std::uint8_t* data, std::size_t n) override {
    last_append_offset_ = base_.size();
    last_append_bytes_ = n;
    base_.Append(data, n);
    if (mode_ == SyncMode::kOnAppend) frontier_ = base_.size();
  }

  void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const override {
    base_.ReadAt(offset, n, out);
  }

  void Truncate(std::uint64_t new_size) override {
    base_.Truncate(new_size);
    // Truncation is durable by contract; nothing above it can survive.
    frontier_ = std::min(frontier_, new_size);
    last_append_offset_ = std::min(last_append_offset_, new_size);
    last_append_bytes_ = 0;
  }

  void Sync() override {
    base_.Sync();
    if (mode_ != SyncMode::kNever) frontier_ = base_.size();
  }

  std::uint64_t durable_size() const override { return frontier_; }

  void ReplaceContents(const std::uint8_t* data, std::size_t n) override {
    base_.ReplaceContents(data, n);
    // Atomic + durable by contract: the whole new content survives.
    frontier_ = n;
    last_append_offset_ = n;
    last_append_bytes_ = 0;
  }

  /// Power cut between appends: the unsynced tail vanishes, the durable
  /// prefix survives. The base device is left exactly as a post-crash open
  /// would find it.
  void Crash() { base_.Truncate(frontier_); }

  /// Power cut mid-append: keeps `keep_bytes` of the final append (clamped
  /// to its length) and drops the rest — but never below the durable
  /// frontier, which no crash can take back. keep_bytes == 0 drops the
  /// whole in-flight append; sweeping it over [0, final_append_bytes()]
  /// tears the tail at every byte.
  void CrashTearingFinalAppend(std::uint64_t keep_bytes) {
    const std::uint64_t kept =
        last_append_offset_ + std::min(keep_bytes, last_append_bytes_);
    base_.Truncate(std::max(frontier_, kept));
  }

  std::uint64_t final_append_bytes() const { return last_append_bytes_; }
  Storage& base() { return base_; }

 private:
  Storage& base_;
  SyncMode mode_;
  /// The wrapper's own durable frontier (see SyncMode).
  std::uint64_t frontier_ = 0;
  std::uint64_t last_append_offset_ = 0;
  std::uint64_t last_append_bytes_ = 0;
};

}  // namespace lightwave::journal
