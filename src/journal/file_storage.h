// File-backed journal storage: the Storage byte-device contract over a real
// POSIX fd, so the durability claims the crash matrix proves against
// MemStorage also cross an actual fsync boundary.
//
// The sync policy decides when written bytes become durable:
//
//   kEveryAppend   fsync inside every Append — durable_size() == size()
//                  at all times. One fsync per storage append; with
//                  Wal::AppendBatch that is still one per batch, but a
//                  batch-of-1 serve loop pays one fsync per command.
//   kGroupCommit   Append only writes; the explicit Sync() the Wal issues
//                  at each append boundary does ONE fsync per
//                  Wal::Append/AppendBatch. A crash between the write and
//                  the sync loses the tail — which the WAL tolerates by
//                  design (an unacknowledged batch is resubmitted).
//   kPeriodic      Sync() fsyncs only when `periodic_interval` has elapsed
//                  since the last fsync; the window between fsyncs is the
//                  bound on acknowledged-but-lost work. The loosest policy,
//                  for workloads that can replay from upstream.
//
// Truncate is always durable (ftruncate + fsync) regardless of policy:
// torn-tail repair must not resurrect discarded bytes after the next
// crash. ReplaceContents is atomic: write to `<path>.replace.tmp`, fsync,
// rename over `path`, fsync the directory — a crash at any byte of the
// rewrite leaves the OLD content intact (the crash-mid-compaction rule:
// the old log wins until the rename). Open() removes a stale tmp file, so
// a crashed rewrite cannot be mistaken for the log.
//
// Threading: ALL access follows the Storage contract (externally
// serialized — the Wal's background compactor takes its own lock around
// every storage call, reads included). ReadAt consults the mutable size
// bookkeeping, so even a read of already-written bytes races a concurrent
// Append; callers that want lock-free scanning must copy the bytes out
// under their serialization first (see Wal::CompactorLoop).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "journal/storage.h"

namespace lightwave::journal {

enum class SyncPolicy : std::uint8_t { kEveryAppend, kGroupCommit, kPeriodic };

/// Human-readable policy name for logs, bench output, and test messages.
const char* ToString(SyncPolicy policy);

struct FileStorageOptions {
  SyncPolicy policy = SyncPolicy::kGroupCommit;
  /// Only read under kPeriodic: minimum time between fsyncs.
  std::chrono::milliseconds periodic_interval{5};
};

class FileStorage final : public Storage {
 public:
  /// Opens (creating if absent) the file at `path` and removes any stale
  /// `.replace.tmp` beside it (a crashed ReplaceContents; the old content
  /// wins). Fails on unopenable paths, never on an empty or missing file.
  static common::Result<std::unique_ptr<FileStorage>> Open(const std::string& path,
                                                           FileStorageOptions options = {});

  /// Closes the fd after a final fsync (a clean shutdown loses nothing; a
  /// crash is modeled by never destroying the object — see FaultyStorage).
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  std::uint64_t size() const override { return size_; }
  void Append(const std::uint8_t* data, std::size_t n) override;
  void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const override;
  void Truncate(std::uint64_t new_size) override;
  void Sync() override;
  std::uint64_t durable_size() const override { return durable_size_; }
  void ReplaceContents(const std::uint8_t* data, std::size_t n) override;

  /// Unconditional fsync, ignoring the policy (ops/test hook).
  void SyncNow();

  const std::string& path() const { return path_; }
  const FileStorageOptions& options() const { return options_; }
  /// fsyncs actually issued (fdatasync/fsync on the data fd) — the cost a
  /// sync policy is tuning; bench_recovery reports it per policy.
  std::uint64_t fsync_count() const { return fsync_count_; }

 private:
  FileStorage(std::string path, int fd, std::uint64_t size, FileStorageOptions options);

  std::string path_;
  int fd_ = -1;
  FileStorageOptions options_;
  std::uint64_t size_ = 0;
  std::uint64_t durable_size_ = 0;
  std::uint64_t fsync_count_ = 0;
  std::chrono::steady_clock::time_point last_sync_;
};

/// `<path>.replace.tmp` — the side file ReplaceContents stages into. Open()
/// unlinks it; exposed so crash tests can plant a stale one.
std::string ReplaceTmpPath(const std::string& path);

}  // namespace lightwave::journal
