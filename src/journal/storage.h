// Durable byte device abstraction under the journal. The write-ahead log and
// the snapshot store both talk to a Storage, so tests and the simulated
// fleet service can model a crash precisely: every FleetService/controller
// object is volatile and dies with the "process", while the Storage objects
// survive and seed recovery — the same split a real deployment gets from
// process memory vs fsynced files. MemStorage is the hermetic in-memory
// implementation the crash-matrix tests re-run recovery against at every
// record boundary; FileStorage (journal/file_storage.h) is the same
// contract over a real POSIX fd, and FaultyStorage
// (journal/faulty_storage.h) wraps either to model torn writes and lost
// sync windows.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace lightwave::journal {

/// Append-only byte device with random reads, truncation, and an explicit
/// durability boundary (the subset of file semantics the journal needs).
///
/// Durability model: bytes an Append returns with are WRITTEN but not
/// necessarily DURABLE — durable_size() tracks the frontier a crash cannot
/// take back, and Sync() asks the device to advance it (subject to the
/// device's sync policy; see FileStorage). MemStorage has no volatile
/// layer, so its appends are durable the moment they return. Truncation is
/// always durable: torn-tail repair must not resurrect after a crash.
class Storage {
 public:
  virtual ~Storage() = default;

  virtual std::uint64_t size() const = 0;
  virtual void Append(const std::uint8_t* data, std::size_t n) = 0;
  /// Reads [offset, offset + n) into `out`. The range must be within
  /// size(); implementations enforce the contract (debug-fatal) and never
  /// read out of bounds even when it is violated.
  virtual void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const = 0;
  /// Discards everything at and beyond `new_size` (torn-tail repair and log
  /// compaction), durably. Growing is not supported; new_size must be
  /// <= size() — implementations enforce this with LW_CHECK.
  virtual void Truncate(std::uint64_t new_size) = 0;

  /// Asks the device to make everything appended so far durable. The
  /// default is a no-op for devices whose appends are already durable;
  /// FileStorage interprets it through its sync policy (one fsync per
  /// Wal append boundary under kGroupCommit, elapsed-interval check under
  /// kPeriodic).
  virtual void Sync() {}

  /// The durable frontier: bytes below it survive any crash. Devices with
  /// no volatile layer report size().
  virtual std::uint64_t durable_size() const { return size(); }

  /// Atomically replaces the whole content with `data` (durable on return).
  /// Snapshot writes and WAL compaction go through this so a crash can
  /// never observe a half-replaced device: FileStorage implements it as
  /// write-to-temp + fsync + rename (the old content wins until the
  /// rename); the default (safe for in-memory devices, where no crash can
  /// land mid-call) is truncate + append + sync.
  virtual void ReplaceContents(const std::uint8_t* data, std::size_t n) {
    Truncate(0);
    if (n > 0) Append(data, n);
    Sync();
  }
};

/// In-memory storage standing in for a durable file.
class MemStorage final : public Storage {
 public:
  std::uint64_t size() const override { return bytes_.size(); }

  void Append(const std::uint8_t* data, std::size_t n) override {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const override {
    // Hot path (every scan record): debug-fatal on a contract break, but
    // never memcpy out of range even when a custom handler continues.
    LW_DCHECK(offset <= bytes_.size() && n <= bytes_.size() - offset)
        << "ReadAt [" << offset << ", " << offset + n << ") out of range (size "
        << bytes_.size() << ")";
    if (offset > bytes_.size() || n > bytes_.size() - offset) return;
    std::memcpy(out, bytes_.data() + offset, n);
  }

  void Truncate(std::uint64_t new_size) override {
    LW_CHECK(new_size <= bytes_.size())
        << "Truncate to " << new_size << " would grow the device (size "
        << bytes_.size() << "); growing is not supported";
    if (new_size < bytes_.size()) bytes_.resize(static_cast<std::size_t>(new_size));
  }

  void ReplaceContents(const std::uint8_t* data, std::size_t n) override {
    bytes_.assign(data, data + n);
  }

  /// Test hooks: direct access to the underlying bytes for corruption and
  /// truncation sweeps (the torn-tail and fuzz suites).
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace lightwave::journal
