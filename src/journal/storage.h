// Durable byte device abstraction under the journal. The write-ahead log and
// the snapshot store both talk to a Storage, so tests and the simulated
// fleet service can model a crash precisely: every FleetService/controller
// object is volatile and dies with the "process", while the Storage objects
// survive and seed recovery — the same split a real deployment gets from
// process memory vs fsynced files. MemStorage is the only implementation;
// it is deterministic, hermetic, and cheap enough for crash-matrix tests
// that re-run recovery at every record boundary.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace lightwave::journal {

/// Append-only byte device with random reads and truncation (the subset of
/// file semantics the journal needs). Appends are modeled as durable the
/// moment they return, i.e. every append carries an implicit sync.
class Storage {
 public:
  virtual ~Storage() = default;

  virtual std::uint64_t size() const = 0;
  virtual void Append(const std::uint8_t* data, std::size_t n) = 0;
  /// Reads [offset, offset + n) into `out`. The caller must stay in bounds
  /// (the journal always range-checks against size() first).
  virtual void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const = 0;
  /// Discards everything at and beyond `new_size` (torn-tail repair and log
  /// compaction). Growing is not supported; new_size must be <= size().
  virtual void Truncate(std::uint64_t new_size) = 0;
};

/// In-memory storage standing in for a durable file.
class MemStorage final : public Storage {
 public:
  std::uint64_t size() const override { return bytes_.size(); }

  void Append(const std::uint8_t* data, std::size_t n) override {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  void ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const override {
    std::memcpy(out, bytes_.data() + offset, n);
  }

  void Truncate(std::uint64_t new_size) override {
    if (new_size < bytes_.size()) bytes_.resize(static_cast<std::size_t>(new_size));
  }

  /// Test hooks: direct access to the underlying bytes for corruption and
  /// truncation sweeps (the torn-tail and fuzz suites).
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace lightwave::journal
