// Write-ahead log: the event-sourced durability layer under the fleet
// service (the paper's §3.2 availability story demands the management plane
// survive CPE restarts without disturbing running slices; everything the
// controller knows must therefore be reconstructible from durable state).
//
// Record framing, little-endian:
//
//   [length u32][crc32c u32][sequence u64][payload bytes]
//
// `length` counts the sequence field plus the payload (so length >= 8); the
// CRC32C (Castagnoli) covers the length field, the sequence, and the payload,
// so a bit flip anywhere in the record — including a lying length field — is
// caught. A scan walks records from offset 0 and stops at the first frame
// that is truncated, corrupt, oversized, or out of sequence: that is the
// torn tail a crash mid-append leaves behind. The scan NEVER throws or
// crashes on hostile bytes; it reports how far the log was valid and why it
// stopped, and recovery truncates the tail and appends from there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "journal/storage.h"

namespace lightwave::telemetry {
class Counter;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::journal {

/// CRC32C (Castagnoli polynomial, reflected, table-driven). Distinct from
/// the wire format's IEEE CRC32 so a journal record accidentally fed to the
/// frame decoder (or vice versa) cannot pass both gates.
std::uint32_t Crc32c(const std::uint8_t* data, std::size_t size);
/// Incremental form: extends `crc` (state from a previous call) over more
/// bytes. Start from Crc32cInit() and finish with Crc32cFinish().
std::uint32_t Crc32cInit();
std::uint32_t Crc32cExtend(std::uint32_t state, const std::uint8_t* data, std::size_t size);
std::uint32_t Crc32cFinish(std::uint32_t state);

struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// What a scan found. `tail` is Ok when the log ends exactly at a record
/// boundary; otherwise it describes the torn tail (which starts at
/// `valid_bytes`). Records before the tear are always intact and returned.
struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;
  common::Status tail;
};

class Wal {
 public:
  /// Largest accepted record body (sequence + payload). Guards the scanner
  /// against hostile length fields and the writer against runaway payloads.
  static constexpr std::uint64_t kMaxRecordBytes = 1ull << 20;

  /// Opening a log IS recovery: the constructor scans the storage, truncates
  /// any torn tail so future appends land at a record boundary, and
  /// positions the next sequence number after the last valid record. The
  /// scan (including the tear diagnosis) stays readable via recovery_scan().
  explicit Wal(Storage& storage);

  /// Walks the records in `storage` without modifying it. Total: any byte
  /// soup is safe input; the result's `tail` explains the first defect.
  static WalScan Scan(const Storage& storage);

  /// Appends one record and returns its sequence number. Fails only on an
  /// oversized payload; the storage model itself cannot fail.
  common::Result<std::uint64_t> Append(const std::vector<std::uint8_t>& payload);

  /// Group commit: frames every payload as a consecutive record and hands
  /// the whole batch to the storage in ONE Append — the device-call and
  /// buffer-churn cost is paid once per batch instead of once per record.
  /// Record framing is byte-identical to N single Appends (Scan cannot tell
  /// them apart), so torn-tail repair and replay are unchanged; a crash mid
  /// batch-append tears at most the batch's own bytes. Returns the sequence
  /// number of the FIRST record; the rest follow densely. An oversized
  /// payload fails the whole batch before any byte reaches the storage.
  common::Result<std::uint64_t> AppendBatch(
      const std::vector<std::vector<std::uint8_t>>& payloads);

  /// Log compaction after a snapshot: drops every record with seq <=
  /// `upto_seq` (typically all of them — the service snapshots at the
  /// applied frontier). The sequence counter is NOT reset; exactly-once
  /// replay keys on sequence numbers staying monotone across compactions.
  common::Status Compact(std::uint64_t upto_seq);

  /// Recovery hook: advances the sequence counter (never rewinds). Needed
  /// when a snapshot proves sequence numbers beyond what the (compacted,
  /// possibly empty) log itself shows.
  void SetNextSeq(std::uint64_t next_seq);

  std::uint64_t next_seq() const { return next_seq_; }
  const WalScan& recovery_scan() const { return recovery_scan_; }
  /// Torn-tail bytes the constructor truncated to reach a record boundary.
  std::uint64_t tail_truncated_bytes() const { return tail_truncated_bytes_; }
  const Storage& storage() const { return storage_; }

  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t appended_bytes() const { return appended_bytes_; }
  /// Storage Append calls issued by AppendBatch (one per batch).
  std::uint64_t batch_appends() const { return batch_appends_; }
  std::uint64_t compactions() const { return compactions_; }
  /// Bytes reclaimed by compaction plus torn-tail truncation.
  std::uint64_t reclaimed_bytes() const { return reclaimed_bytes_; }

  /// Mirrors append/compaction activity into `hub` (nullptr detaches):
  /// lightwave_journal_bytes_total, appends, compactions, reclaimed bytes.
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  Storage& storage_;
  WalScan recovery_scan_;
  std::uint64_t tail_truncated_bytes_ = 0;
  /// Frames one record into `out` (shared by Append and AppendBatch so the
  /// two paths cannot drift).
  void FrameRecord(std::uint64_t seq, const std::vector<std::uint8_t>& payload,
                   std::vector<std::uint8_t>* out) const;

  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t batch_appends_ = 0;
  /// Reused frame buffer: group commit amortizes allocation too.
  std::vector<std::uint8_t> batch_scratch_;
  std::uint64_t compactions_ = 0;
  std::uint64_t reclaimed_bytes_ = 0;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* append_counter_ = nullptr;
  telemetry::Counter* compaction_counter_ = nullptr;
  telemetry::Counter* reclaimed_counter_ = nullptr;
};

}  // namespace lightwave::journal
