// Write-ahead log: the event-sourced durability layer under the fleet
// service (the paper's §3.2 availability story demands the management plane
// survive CPE restarts without disturbing running slices; everything the
// controller knows must therefore be reconstructible from durable state).
//
// Record framing, little-endian:
//
//   [length u32][crc32c u32][sequence u64][payload bytes]
//
// `length` counts the sequence field plus the payload (so length >= 8); the
// CRC32C (Castagnoli) covers the length field, the sequence, and the payload,
// so a bit flip anywhere in the record — including a lying length field — is
// caught. A scan walks records from offset 0 and stops at the first frame
// that is truncated, corrupt, oversized, or out of sequence: that is the
// torn tail a crash mid-append leaves behind. The scan NEVER throws or
// crashes on hostile bytes; it reports how far the log was valid, why it
// stopped, and WHICH KIND of defect it hit — a clean truncation (the
// expected artifact of a crash inside a sync window or mid-append) vs
// genuine corruption of bytes that were supposedly durable (bit rot, a
// misdirected write) — and recovery truncates the tail and appends from
// there.
//
// Durability boundary: every Append/AppendBatch ends with a Storage::Sync()
// — the commit point. Over FileStorage that is where the sync policy bites
// (kGroupCommit = one fsync per batch right here; kEveryAppend already
// synced inside the storage; kPeriodic may decline). Over MemStorage it is
// a no-op.
//
// Compaction runs in one of two modes. Inline (default): Compact() rewrites
// the log on the calling thread via Storage::ReplaceContents — atomic over
// files (write-to-temp + rename), so a crash at any byte of the rewrite
// leaves the OLD log intact. Background (StartBackgroundCompaction):
// Compact() just records the floor and returns; a dedicated thread copies
// the frozen prefix out under a brief lock, walks the copy unlocked, and
// installs the compacted log under the lock again — the record walk is off
// the serve path, which only ever blocks for the bulk copy and the
// install. The crash rule is the same in both modes: the old log wins
// until the rename.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "journal/storage.h"

namespace lightwave::telemetry {
class Counter;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::journal {

/// CRC32C (Castagnoli polynomial, reflected, table-driven). Distinct from
/// the wire format's IEEE CRC32 so a journal record accidentally fed to the
/// frame decoder (or vice versa) cannot pass both gates.
std::uint32_t Crc32c(const std::uint8_t* data, std::size_t size);
/// Incremental form: extends `crc` (state from a previous call) over more
/// bytes. Start from Crc32cInit() and finish with Crc32cFinish().
std::uint32_t Crc32cInit();
std::uint32_t Crc32cExtend(std::uint32_t state, const std::uint8_t* data, std::size_t size);
std::uint32_t Crc32cFinish(std::uint32_t state);

struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// How a scan's tail diagnosis classifies the first defect. The
/// distinction drives telemetry (RecoveryStats splits the counters): a
/// truncation is the EXPECTED artifact of a crash mid-append or inside an
/// open sync window (kGroupCommit/kPeriodic lose the unsynced tail by
/// design), while corruption means bytes that should have been stable were
/// damaged — an alarm, not business as usual.
enum class WalTailKind : std::uint8_t {
  /// The log ends exactly at a record boundary.
  kClean,
  /// The final record is incomplete: a partial header, a body cut short by
  /// EOF, or a zero-filled tail. Everything before it is intact.
  kTruncated,
  /// A structurally complete record is damaged (CRC mismatch, implausible
  /// length with the full header present, sequence discontinuity).
  kCorrupt,
};

const char* ToString(WalTailKind kind);

/// What a scan found. `tail` is Ok when the log ends exactly at a record
/// boundary; otherwise it describes the torn tail (which starts at
/// `valid_bytes`) and `tail_kind` classifies it. Records before the tear
/// are always intact and returned.
struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;
  common::Status tail;
  WalTailKind tail_kind = WalTailKind::kClean;
};

class Wal {
 public:
  /// Largest accepted record body (sequence + payload). Guards the scanner
  /// against hostile length fields and the writer against runaway payloads.
  static constexpr std::uint64_t kMaxRecordBytes = 1ull << 20;

  /// Opening a log IS recovery: the constructor scans the storage, truncates
  /// any torn tail so future appends land at a record boundary, and
  /// positions the next sequence number after the last valid record. The
  /// scan (including the tear diagnosis) stays readable via recovery_scan().
  explicit Wal(Storage& storage);

  /// Joins the background compactor (completing any pending request) if it
  /// was started.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Walks the records in `storage` without modifying it. Total: any byte
  /// soup is safe input; the result's `tail` explains the first defect.
  static WalScan Scan(const Storage& storage);

  /// Appends one record and returns its sequence number. The record is
  /// synced (per the storage's policy) before this returns — the commit
  /// boundary. Fails only on an oversized payload.
  common::Result<std::uint64_t> Append(const std::vector<std::uint8_t>& payload);

  /// Group commit: frames every payload as a consecutive record and hands
  /// the whole batch to the storage in ONE Append followed by ONE Sync —
  /// the device-call, fsync, and buffer-churn cost is paid once per batch
  /// instead of once per record. Record framing is byte-identical to N
  /// single Appends (Scan cannot tell them apart), so torn-tail repair and
  /// replay are unchanged; a crash mid batch-append tears at most the
  /// batch's own bytes. Returns the sequence number of the FIRST record;
  /// the rest follow densely. An oversized payload fails the whole batch
  /// before any byte reaches the storage.
  common::Result<std::uint64_t> AppendBatch(
      const std::vector<std::vector<std::uint8_t>>& payloads);

  /// Log compaction after a snapshot: drops every record with seq <=
  /// `upto_seq` (typically all of them — the service snapshots at the
  /// applied frontier). The sequence counter is NOT reset; exactly-once
  /// replay keys on sequence numbers staying monotone across compactions.
  /// Inline mode rewrites the log here (atomically — see ReplaceContents);
  /// background mode records the floor and returns immediately.
  common::Status Compact(std::uint64_t upto_seq);

  /// Moves compaction off the serve path: after this, Compact() only
  /// enqueues the floor and a dedicated thread does the rewrite — copying
  /// the frozen log prefix out under a brief lock, walking the copy
  /// without blocking appends, then installing the compacted log (atomic
  /// rename over files) under the lock again. Safe to call once, before or
  /// between serving; appenders may keep appending throughout.
  void StartBackgroundCompaction();

  /// Drains any pending compaction, then joins the thread. Idempotent;
  /// also called by the destructor.
  void StopBackgroundCompaction();

  bool background_compaction() const { return compactor_.joinable(); }

  /// Blocks until no compaction is pending or running (test/ops hook; a
  /// no-op when background compaction is off).
  void WaitForCompaction();

  /// Recovery hook: advances the sequence counter (never rewinds). Needed
  /// when a snapshot proves sequence numbers beyond what the (compacted,
  /// possibly empty) log itself shows.
  void SetNextSeq(std::uint64_t next_seq);

  std::uint64_t next_seq() const { return next_seq_; }
  const WalScan& recovery_scan() const { return recovery_scan_; }
  /// Torn-tail bytes the constructor truncated to reach a record boundary.
  std::uint64_t tail_truncated_bytes() const { return tail_truncated_bytes_; }
  const Storage& storage() const { return storage_; }

  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t appended_bytes() const { return appended_bytes_; }
  /// Storage Append calls issued by AppendBatch (one per batch).
  std::uint64_t batch_appends() const { return batch_appends_; }
  std::uint64_t compactions() const { return compactions_; }
  /// Bytes reclaimed by compaction plus torn-tail truncation.
  std::uint64_t reclaimed_bytes() const { return reclaimed_bytes_; }

  /// Mirrors append/compaction activity into `hub` (nullptr detaches):
  /// lightwave_journal_bytes_total, appends, compactions, reclaimed bytes.
  /// Safe to call while the background compactor runs (the pointer swap
  /// synchronizes with the worker under compact_mu_).
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  /// Frames one record into `out` (shared by Append and AppendBatch so the
  /// two paths cannot drift).
  void FrameRecord(std::uint64_t seq, const std::vector<std::uint8_t>& payload,
                   std::vector<std::uint8_t>* out) const;
  /// The actual rewrite, inline mode only (runs on the Compact() caller
  /// under the Wal's external serialization; the background worker has its
  /// own copy-then-install loop).
  void CompactNow(std::uint64_t upto_seq);
  /// Walks frames over `data[0, limit)` and returns the offset of the
  /// first record with seq > upto_seq (== limit when none). The prefix
  /// must be boundary-valid (appends always leave it so). Pure buffer
  /// walk: callers copy the bytes out of the storage first, so the walk
  /// never races a concurrent append.
  static std::uint64_t CutOffset(const std::uint8_t* data, std::uint64_t limit,
                                 std::uint64_t upto_seq);
  void CompactorLoop();

  Storage& storage_;
  WalScan recovery_scan_;
  std::uint64_t tail_truncated_bytes_ = 0;

  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t batch_appends_ = 0;
  /// Reused frame buffer: group commit amortizes allocation too.
  std::vector<std::uint8_t> batch_scratch_;
  std::uint64_t compactions_ = 0;
  std::uint64_t reclaimed_bytes_ = 0;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* append_counter_ = nullptr;
  telemetry::Counter* compaction_counter_ = nullptr;
  telemetry::Counter* reclaimed_counter_ = nullptr;

  // --- background compaction ------------------------------------------------
  // While the compactor runs, every storage ACCESS (the append path's
  // write+sync, the worker's prefix copy and install) happens under
  // compact_mu_ — ReadAt is not safe against a concurrent Append on either
  // storage kind (FileStorage consults mutable size bookkeeping;
  // MemStorage's backing vector can reallocate), so the worker copies the
  // frozen prefix out under the lock and walks the COPY without it. The
  // counters the worker updates (compactions_, reclaimed_bytes_, and the
  // telemetry pointers AttachTelemetry swaps) are written under the lock
  // too; readers quiesce via WaitForCompaction() first. With the compactor
  // off, only AttachTelemetry locks (the Wal keeps its documented
  // externally-serialized contract).
  mutable lw::Mutex compact_mu_{"journal.wal.compact", lw::rank::kWalCompact};
  lw::CondVar compact_cv_;
  std::thread compactor_;
  bool stop_compactor_ LW_GUARDED_BY(compact_mu_) = false;
  bool has_pending_ LW_GUARDED_BY(compact_mu_) = false;
  std::uint64_t pending_floor_ LW_GUARDED_BY(compact_mu_) = 0;
  bool compacting_ LW_GUARDED_BY(compact_mu_) = false;
};

}  // namespace lightwave::journal
