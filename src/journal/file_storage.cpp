#include "journal/file_storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace lightwave::journal {

namespace {

/// Full-coverage pwrite: POSIX may write short; the storage contract may
/// not. Disk-level failure (ENOSPC, EIO) is fatal here — the journal has
/// no way to un-acknowledge state it already applied.
void PwriteAll(int fd, const std::uint8_t* data, std::size_t n, std::uint64_t offset) {
  while (n > 0) {
    const ssize_t wrote = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      LW_CHECK(false) << "pwrite failed: " << std::strerror(errno);
      return;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
    offset += static_cast<std::uint64_t>(wrote);
  }
}

void FsyncOrDie(int fd, const char* what) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  LW_CHECK(rc == 0) << what << " fsync failed: " << std::strerror(errno);
}

/// fsync on the parent directory publishes a rename durably (POSIX leaves
/// the entry update volatile until the directory itself is synced).
void FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  LW_CHECK(dir_fd >= 0) << "open dir " << dir << " failed: " << std::strerror(errno);
  FsyncOrDie(dir_fd, "directory");
  ::close(dir_fd);
}

}  // namespace

const char* ToString(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kEveryAppend: return "every_append";
    case SyncPolicy::kGroupCommit: return "group_commit";
    case SyncPolicy::kPeriodic: return "periodic";
  }
  return "unknown";
}

std::string ReplaceTmpPath(const std::string& path) { return path + ".replace.tmp"; }

common::Result<std::unique_ptr<FileStorage>> FileStorage::Open(const std::string& path,
                                                               FileStorageOptions options) {
  // Crash-mid-ReplaceContents rule: a tmp file that never got renamed is a
  // dead rewrite; the old content at `path` wins. Remove it so nothing can
  // confuse it for the log later.
  ::unlink(ReplaceTmpPath(path).c_str());
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return common::Internal("open " + path + " failed: " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return common::Internal("fstat " + path + " failed: " + err);
  }
  return std::unique_ptr<FileStorage>(
      new FileStorage(path, fd, static_cast<std::uint64_t>(st.st_size), options));
}

FileStorage::FileStorage(std::string path, int fd, std::uint64_t size,
                         FileStorageOptions options)
    : path_(std::move(path)),
      fd_(fd),
      options_(options),
      size_(size),
      // Bytes that survived into this open are durable by definition: the
      // previous process is gone and they are still here.
      durable_size_(size),
      last_sync_(std::chrono::steady_clock::now()) {}

FileStorage::~FileStorage() {
  if (fd_ < 0) return;
  if (durable_size_ < size_) FsyncOrDie(fd_, path_.c_str());
  ::close(fd_);
}

void FileStorage::Append(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  PwriteAll(fd_, data, n, size_);
  size_ += n;
  if (options_.policy == SyncPolicy::kEveryAppend) SyncNow();
}

void FileStorage::ReadAt(std::uint64_t offset, std::size_t n, std::uint8_t* out) const {
  LW_DCHECK(offset <= size_ && n <= size_ - offset)
      << "ReadAt [" << offset << ", " << offset + n << ") out of range (size " << size_
      << ")";
  if (offset > size_ || n > size_ - offset) return;
  while (n > 0) {
    const ssize_t got = ::pread(fd_, out, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      LW_CHECK(false) << "pread failed: " << std::strerror(errno);
      return;
    }
    LW_CHECK(got > 0) << "pread hit EOF inside [0, size): file shrank underneath us";
    out += got;
    n -= static_cast<std::size_t>(got);
    offset += static_cast<std::uint64_t>(got);
  }
}

void FileStorage::Truncate(std::uint64_t new_size) {
  LW_CHECK(new_size <= size_) << "Truncate to " << new_size
                              << " would grow the device (size " << size_
                              << "); growing is not supported";
  if (new_size >= size_) return;
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(new_size));
  } while (rc != 0 && errno == EINTR);
  LW_CHECK(rc == 0) << "ftruncate failed: " << std::strerror(errno);
  size_ = new_size;
  // Truncation is durable under every policy: torn-tail repair must not
  // resurrect after the next crash.
  SyncNow();
}

void FileStorage::Sync() {
  if (durable_size_ == size_) return;
  if (options_.policy == SyncPolicy::kPeriodic) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_sync_ < options_.periodic_interval) return;
  }
  SyncNow();
}

void FileStorage::SyncNow() {
  FsyncOrDie(fd_, path_.c_str());
  ++fsync_count_;
  durable_size_ = size_;
  last_sync_ = std::chrono::steady_clock::now();
}

void FileStorage::ReplaceContents(const std::uint8_t* data, std::size_t n) {
  const std::string tmp = ReplaceTmpPath(path_);
  const int tmp_fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  LW_CHECK(tmp_fd >= 0) << "open " << tmp << " failed: " << std::strerror(errno);
  if (n > 0) PwriteAll(tmp_fd, data, n, 0);
  FsyncOrDie(tmp_fd, tmp.c_str());
  // The atomic commit point. Before it the old file is untouched (a crash
  // leaves the stale tmp for Open() to discard); after it the new content
  // is the file, and the directory fsync makes the swap itself durable.
  LW_CHECK(::rename(tmp.c_str(), path_.c_str()) == 0)
      << "rename " << tmp << " -> " << path_ << " failed: " << std::strerror(errno);
  FsyncParentDir(path_);
  ::close(fd_);
  fd_ = tmp_fd;
  size_ = n;
  durable_size_ = n;
  ++fsync_count_;
  last_sync_ = std::chrono::steady_clock::now();
}

}  // namespace lightwave::journal
