#include "optics/polarization.h"

#include <algorithm>
#include <cmath>

namespace lightwave::optics {

JonesMatrix Rotator(double radians) {
  const double c = std::cos(radians), s = std::sin(radians);
  return JonesMatrix{{c, 0.0}, {-s, 0.0}, {s, 0.0}, {c, 0.0}};
}

JonesMatrix PolarizerS() { return JonesMatrix{{1, 0}, {0, 0}, {0, 0}, {0, 0}}; }

JonesMatrix PolarizerP() { return JonesMatrix{{0, 0}, {0, 0}, {0, 0}, {1, 0}}; }

JonesMatrix HalfWavePlate(double axis_radians) {
  const double c = std::cos(2.0 * axis_radians), s = std::sin(2.0 * axis_radians);
  return JonesMatrix{{c, 0.0}, {s, 0.0}, {s, 0.0}, {-c, 0.0}};
}

JonesMatrix FaradayForward(double angle_radians) { return Rotator(-angle_radians); }

JonesMatrix FaradayBackward(double angle_radians) { return Rotator(angle_radians); }

PolarizationCirculator::PolarizationCirculator(double rotation_error_radians)
    : error_(rotation_error_radians) {}

namespace {

constexpr double kQuarterTurn = M_PI / 4.0;  // the 45-degree design point

}  // namespace

double PolarizationCirculator::Port1To2Power() const {
  // Forward chain (Fig. B.1): Faraday -45(-err) then reciprocal plate +45 —
  // the rotations cancel, so the s-polarized Tx stays s and transmits
  // through the output PBS into the fiber. A rotation error leaves a
  // residual tilt; the PBS strips the mis-polarized component.
  const JonesMatrix chain = Rotator(kQuarterTurn) * FaradayForward(kQuarterTurn + error_);
  const JonesVector out = chain * JonesVector{{1.0, 0.0}, {0.0, 0.0}};
  const JonesVector through = PolarizerS() * out;
  return through.Power();
}

double PolarizationCirculator::Port2To3Power(const JonesVector& input) const {
  // Backward chain: plate +45 then Faraday +45(+err) — the non-reciprocal
  // rotator now adds instead of cancelling, net 90 degrees: s and p swap and
  // the PBS pair recombines everything at port 3 (fibers scramble
  // polarization, so the circulator must pass BOTH states — Appendix B).
  const JonesMatrix chain = FaradayBackward(kQuarterTurn + error_) * Rotator(kQuarterTurn);
  const JonesVector out = chain * input;
  // Port 3 recombines the two PBS arms after the 90-degree net rotation: the
  // component still aligned with the design rotation arrives; the error
  // projection is dumped.
  const double total = out.Power();
  const double misrouted = input.Power() * std::sin(error_) * std::sin(error_);
  return std::max(0.0, total - misrouted);
}

double PolarizationCirculator::Port1To3Leakage() const {
  // The forward light that exits with the wrong polarization follows the
  // port-3 arm of the output PBS instead of the fiber: direct 1 -> 3
  // crosstalk ("stray light ... effectively equivalent to having a
  // reflection in the link", §3.3.1).
  const JonesMatrix chain = Rotator(kQuarterTurn) * FaradayForward(kQuarterTurn + error_);
  const JonesVector out = chain * JonesVector{{1.0, 0.0}, {0.0, 0.0}};
  const JonesVector leaked = PolarizerP() * out;
  return leaked.Power();
}

double PolarizationCirculator::IsolationDb() const {
  const double leakage = Port1To3Leakage();
  if (leakage <= 1e-10) return -100.0;
  return 10.0 * std::log10(leakage);
}

}  // namespace lightwave::optics
