#include "optics/transceiver.h"

#include <algorithm>
#include <cmath>

namespace lightwave::optics {

using common::DbmPower;
using common::Decibel;
using common::GbitPerSec;

const char* ToString(FormFactor f) {
  switch (f) {
    case FormFactor::kQsfpPlus: return "QSFP+";
    case FormFactor::kQsfp28: return "QSFP28";
    case FormFactor::kQsfp56: return "QSFP56";
    case FormFactor::kOsfp: return "OSFP";
  }
  return "?";
}

int TransceiverSpec::LaneCount() const { return WdmGrid::Make(grid).lane_count(); }

double TransceiverSpec::ModuleRateGbps() const {
  return lane_rate_gbps.gbps * LaneCount() * wdm_pairs;
}

int TransceiverSpec::FiberCount() const { return bidirectional ? wdm_pairs : 2 * wdm_pairs; }

double TransceiverSpec::EnergyPerBitPj() const {
  return power_w / (ModuleRateGbps() * 1e9) * 1e12;
}

bool TransceiverSpec::InteroperatesWith(const TransceiverSpec& other) const {
  if (bidirectional != other.bidirectional) return false;
  const WdmGrid mine = WdmGrid::Make(grid);
  const WdmGrid theirs = WdmGrid::Make(other.grid);
  if (!mine.Overlaps(theirs) && !theirs.Overlaps(mine)) return false;
  auto rates_of = [](const TransceiverSpec& t) {
    std::vector<double> rates = t.legacy_lane_rates_gbps;
    rates.push_back(t.lane_rate_gbps.gbps);
    return rates;
  };
  for (double r1 : rates_of(*this)) {
    for (double r2 : rates_of(other)) {
      if (std::abs(r1 - r2) < 1e-9) return true;
    }
  }
  return false;
}

std::vector<TransceiverSpec> DcnRoadmap() {
  // Fig. 8: CWDM4 bandwidth grew 20x from 40 Gb/s QSFP+ to 800 Gb/s OSFP
  // with continuously improving energy efficiency.
  std::vector<TransceiverSpec> roadmap;
  roadmap.push_back(TransceiverSpec{
      .name = "40G-QSFP+",
      .year = 2012,
      .form_factor = FormFactor::kQsfpPlus,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kNrz,
      .laser = LaserKind::kDml,
      .lane_rate_gbps = GbitPerSec{10.0},
      .wdm_pairs = 1,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{0.0},
      .rx_sensitivity = DbmPower{-14.0},
      .return_loss = Decibel{-42.0},
      .power_w = 3.0,
      .legacy_lane_rates_gbps = {},
  });
  roadmap.push_back(TransceiverSpec{
      .name = "100G-CWDM4",
      .year = 2015,
      .form_factor = FormFactor::kQsfp28,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kNrz,
      .laser = LaserKind::kDml,
      .lane_rate_gbps = GbitPerSec{25.0},
      .wdm_pairs = 1,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{0.5},
      .rx_sensitivity = DbmPower{-13.0},
      .return_loss = Decibel{-42.0},
      .power_w = 3.5,
      .legacy_lane_rates_gbps = {10.0},
  });
  roadmap.push_back(TransceiverSpec{
      .name = "200G-FR4",
      .year = 2018,
      .form_factor = FormFactor::kQsfp56,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{50.0},
      .wdm_pairs = 1,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{1.0},
      .rx_sensitivity = DbmPower{-11.0},
      .return_loss = Decibel{-45.0},
      .power_w = 4.5,
      .legacy_lane_rates_gbps = {25.0},
      .has_oim_dsp = false,
      .has_inner_sfec = false,
  });
  roadmap.push_back(TransceiverSpec{
      .name = "400G-FR4",
      .year = 2020,
      .form_factor = FormFactor::kOsfp,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{100.0},
      .wdm_pairs = 1,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{1.5},
      .rx_sensitivity = DbmPower{-9.5},
      .return_loss = Decibel{-45.0},
      .power_w = 7.0,
      .legacy_lane_rates_gbps = {25.0, 50.0},
      .has_oim_dsp = true,
      .has_inner_sfec = false,
  });
  roadmap.push_back(TransceiverSpec{
      .name = "800G-OSFP",
      .year = 2022,
      .form_factor = FormFactor::kOsfp,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{100.0},
      .wdm_pairs = 2,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{1.5},
      .rx_sensitivity = DbmPower{-9.5},
      .return_loss = Decibel{-45.0},
      .power_w = 12.0,
      .legacy_lane_rates_gbps = {25.0, 50.0},
      .has_oim_dsp = true,
      .has_inner_sfec = true,
  });
  return roadmap;
}

TransceiverSpec Cwdm4Duplex() {
  TransceiverSpec spec{
      .name = "2x400G-CWDM4-duplex",
      .year = 2021,
      .form_factor = FormFactor::kOsfp,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{100.0},
      .wdm_pairs = 2,
      .bidirectional = false,
      .tx_power_per_lane = DbmPower{1.5},
      .rx_sensitivity = DbmPower{-9.5},
      .return_loss = Decibel{-45.0},
      .power_w = 13.0,
      .legacy_lane_rates_gbps = {50.0},
      .has_oim_dsp = false,
      .has_inner_sfec = false,
  };
  return spec;
}

TransceiverSpec Cwdm4Bidi() {
  // Fig. 9 top: 2x 400G CWDM4 with two integrated circulators. One strand
  // per 400G WDM pair -> a duplex OCS port (N/S pair) carries both links.
  TransceiverSpec spec{
      .name = "2x400G-CWDM4-bidi",
      .year = 2021,
      .form_factor = FormFactor::kOsfp,
      .grid = WdmGridKind::kCwdm4,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{100.0},
      .wdm_pairs = 2,
      .bidirectional = true,
      .tx_power_per_lane = DbmPower{2.0},
      .rx_sensitivity = DbmPower{-9.5},
      .return_loss = Decibel{-48.0},
      .power_w = 14.0,
      .legacy_lane_rates_gbps = {50.0},
      .has_oim_dsp = true,
      .has_inner_sfec = true,
  };
  return spec;
}

TransceiverSpec Cwdm8Bidi() {
  // Fig. 9 bottom: 800G CWDM8 with 8 lanes on 10 nm spacing and a single
  // integrated circulator; halves the OCS count again (Fig. 15a).
  TransceiverSpec spec{
      .name = "800G-CWDM8-bidi",
      .year = 2023,
      .form_factor = FormFactor::kOsfp,
      .grid = WdmGridKind::kCwdm8,
      .modulation = Modulation::kPam4,
      .laser = LaserKind::kEml,
      .lane_rate_gbps = GbitPerSec{100.0},
      .wdm_pairs = 1,
      .bidirectional = true,
      .tx_power_per_lane = DbmPower{2.0},
      .rx_sensitivity = DbmPower{-9.0},
      .return_loss = Decibel{-48.0},
      .power_w = 15.0,
      .legacy_lane_rates_gbps = {50.0},
      .has_oim_dsp = true,
      .has_inner_sfec = true,
  };
  return spec;
}

}  // namespace lightwave::optics
