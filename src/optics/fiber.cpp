#include "optics/fiber.h"

#include <cassert>
#include <cmath>

namespace lightwave::optics {

using common::Decibel;

FiberSpan::FiberSpan(double length_km, int connectors, int splices) : length_km_(length_km) {
  assert(length_km >= 0.0 && connectors >= 0 && splices >= 0);
  connectors_.assign(static_cast<std::size_t>(connectors), ConnectorSpec{});
  splices_.assign(static_cast<std::size_t>(splices), SpliceSpec{});
}

Decibel FiberSpan::InsertionLoss() const {
  Decibel total{length_km_ * kAttenuationDbPerKm};
  for (const auto& c : connectors_) total += c.insertion_loss;
  for (const auto& s : splices_) total += s.insertion_loss;
  return total;
}

std::vector<Decibel> FiberSpan::ReflectionPoints() const {
  std::vector<Decibel> points;
  points.reserve(connectors_.size());
  for (const auto& c : connectors_) points.push_back(c.return_loss);
  return points;
}

double FiberSpan::DispersionPsPerNm(common::Nanometers wavelength) const {
  const double l = wavelength.nm;
  const double l0 = kZeroDispersionWavelength.nm;
  // G.652 dispersion: D(l) = (S0/4) * (l - l0^4 / l^3).
  const double d = kDispersionSlope / 4.0 * (l - std::pow(l0, 4) / std::pow(l, 3));
  return d * length_km_;
}

Decibel FiberSpan::DispersionPenalty(common::Nanometers wavelength,
                                     common::GbitPerSec lane_rate,
                                     double chirp_factor) const {
  // ISI penalty model: penalty grows with the square of (accumulated
  // dispersion x spectral width x baud rate). Spectral width of an
  // intensity-modulated signal ~ chirp_factor * baud / c expressed in nm.
  const double baud = lane_rate.gbps * 1e9 / 2.0;  // PAM4 baud; NRZ callers
                                                   // pass the bit rate and a
                                                   // doubled chirp factor.
  const double d_total = std::abs(DispersionPsPerNm(wavelength));  // ps/nm
  const double c_nm_per_s = 299792458.0 * 1e9;  // speed of light in nm/s
  const double carrier_nm = wavelength.nm;
  // Signal spectral width in nm: dl = l^2/c * B * (1 + chirp).
  const double width_nm = carrier_nm * carrier_nm / c_nm_per_s * baud * (1.0 + chirp_factor);
  // Pulse spread as a fraction of the symbol period.
  const double spread_ps = d_total * width_nm;
  const double symbol_ps = 1e12 / baud;
  const double eps = spread_ps / symbol_ps;
  // Standard closed-form ISI penalty: -5*log10(1 - (2*eps)^2), clamped.
  const double arg = 1.0 - std::min(0.96, 4.0 * eps * eps);
  return Decibel{-5.0 * std::log10(arg)};
}

}  // namespace lightwave::optics
