#include "optics/circulator.h"

namespace lightwave::optics {

using common::Decibel;

CirculatorSpec TelecomBaselineCirculator() {
  // Telecom parts target the C band (1550 nm) and tolerate more crosstalk;
  // at 1300 nm their isolation and return loss are inadequate for bidi links
  // (§3.3.1), which is what motivated the re-engineering.
  return CirculatorSpec{
      .insertion_loss_tx = Decibel{1.1},
      .insertion_loss_rx = Decibel{1.1},
      .isolation = Decibel{-40.0},
      .return_loss = Decibel{-40.0},
      .integrated = false,
  };
}

CirculatorSpec DatacomCirculator() {
  return CirculatorSpec{
      .insertion_loss_tx = Decibel{0.9},
      .insertion_loss_rx = Decibel{0.9},
      .isolation = Decibel{-48.0},
      .return_loss = Decibel{-48.0},
      .integrated = false,
  };
}

CirculatorSpec IntegratedCirculator() {
  return CirculatorSpec{
      .insertion_loss_tx = Decibel{0.7},
      .insertion_loss_rx = Decibel{0.7},
      .isolation = Decibel{-50.0},
      .return_loss = Decibel{-50.0},
      .integrated = true,
  };
}

}  // namespace lightwave::optics
