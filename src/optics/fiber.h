// Single-mode fiber spans: attenuation, connectors/splices, and chromatic
// dispersion around the 1310 nm zero-dispersion wavelength. The 80 nm CWDM
// spectral range makes dispersion a real impairment above 100 Gb/s (§3.3.1).
#pragma once

#include <vector>

#include "common/units.h"
#include "optics/wdm.h"

namespace lightwave::optics {

struct ConnectorSpec {
  common::Decibel insertion_loss{0.25};
  common::Decibel return_loss{-45.0};
};

struct SpliceSpec {
  common::Decibel insertion_loss{0.05};
};

/// A passive fiber span between two active elements.
class FiberSpan {
 public:
  FiberSpan(double length_km, int connectors, int splices);

  double length_km() const { return length_km_; }
  int connector_count() const { return static_cast<int>(connectors_.size()); }
  const ConnectorSpec& connector(int i) const {
    return connectors_[static_cast<std::size_t>(i)];
  }

  /// Total attenuation including connectors and splices.
  common::Decibel InsertionLoss() const;

  /// Reflection contributions (relative to the propagating signal) from each
  /// connector; feeds the MPI aggregation in the link budget.
  std::vector<common::Decibel> ReflectionPoints() const;

  /// Chromatic dispersion accumulated over the span for a channel at
  /// `wavelength`, in ps/nm. G.652: D(l) ~ S0/4 * (l - l0 * (l0/l)^3),
  /// approximately S0 * (l - l0) near l0.
  double DispersionPsPerNm(common::Nanometers wavelength) const;

  /// The dB power penalty from dispersion-induced inter-symbol interference
  /// for a lane at `wavelength` running at `lane_rate` with transmitter
  /// chirp-bandwidth product `chirp_factor` (EMLs ~0.3, DMLs ~3).
  common::Decibel DispersionPenalty(common::Nanometers wavelength,
                                    common::GbitPerSec lane_rate,
                                    double chirp_factor) const;

  /// Attenuation coefficient used for the O band.
  static constexpr double kAttenuationDbPerKm = 0.32;
  /// Dispersion slope S0 at the zero-dispersion wavelength [ps/(nm^2*km)].
  static constexpr double kDispersionSlope = 0.092;

 private:
  double length_km_;
  std::vector<ConnectorSpec> connectors_;
  std::vector<SpliceSpec> splices_;
};

}  // namespace lightwave::optics
