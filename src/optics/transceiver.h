// Optical transceiver generations. Covers the WDM roadmap of Fig. 8 (40G
// QSFP+ through 800G OSFP) and the two custom bidi module families built for
// the lightwave fabrics: the DCN CWDM4 bidi part and the ML CWDM8 bidi part
// (Fig. 9). Backward compatibility across line rates (§3.3.1) is modelled
// through the per-module supported-rate list and WDM grid overlap.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "optics/circulator.h"
#include "optics/wdm.h"

namespace lightwave::optics {

enum class Modulation { kNrz, kPam4 };

inline const char* ToString(Modulation m) { return m == Modulation::kNrz ? "NRZ" : "PAM4"; }

enum class FormFactor { kQsfpPlus, kQsfp28, kQsfp56, kOsfp };

const char* ToString(FormFactor f);

enum class LaserKind {
  kDml,  // directly modulated laser — cheap, but high chirp
  kEml,  // externally modulated laser — low chirp; required for bidi MPI
};

struct TransceiverSpec {
  std::string name;
  int year = 0;
  FormFactor form_factor = FormFactor::kOsfp;
  WdmGridKind grid = WdmGridKind::kCwdm4;
  Modulation modulation = Modulation::kNrz;
  LaserKind laser = LaserKind::kDml;
  /// Per-wavelength-lane line rate; module rate = lanes * lane rate
  /// (* 2 fibers for the 2x variants).
  common::GbitPerSec lane_rate_gbps{10.0};
  /// Number of independent WDM Tx/Rx pairs in the module (2 for the
  /// "2x 400G" OSFP of Fig. 9, 1 otherwise).
  int wdm_pairs = 1;
  /// True when a circulator folds Tx and Rx onto one fiber strand.
  bool bidirectional = false;
  /// Launch power per lane and unamplified receiver sensitivity at the KP4
  /// threshold (2e-4) with zero MPI.
  common::DbmPower tx_power_per_lane{1.0};
  common::DbmPower rx_sensitivity{-12.0};
  /// Transmitter-side reflection tolerance / output return loss.
  common::Decibel return_loss{-45.0};
  /// Electrical power draw of the whole module.
  double power_w = 3.5;
  /// Lower line rates the module can be programmed to (backward compat).
  std::vector<double> legacy_lane_rates_gbps;
  /// DSP features (§3.3.2); only the custom bidi parts have them.
  bool has_oim_dsp = false;
  bool has_inner_sfec = false;

  int LaneCount() const;
  /// Total module bandwidth in Gb/s across all WDM pairs.
  double ModuleRateGbps() const;
  /// Fibers required: bidi modules need one strand per WDM pair, duplex
  /// modules two.
  int FiberCount() const;
  /// Energy efficiency in pJ/bit.
  double EnergyPerBitPj() const;
  /// True if this module can be programmed to inter-operate with `other`
  /// (grid overlap + a common lane rate + matching modulation at that rate).
  bool InteroperatesWith(const TransceiverSpec& other) const;
};

/// The Fig. 8 roadmap: every generation deployed in the DCN, oldest first.
std::vector<TransceiverSpec> DcnRoadmap();

/// The three superpod transceiver options compared in Fig. 15a.
TransceiverSpec Cwdm4Duplex();      // standards-based, 2 fibers per WDM pair
TransceiverSpec Cwdm4Bidi();        // custom 2x400G bidi (current deployment)
TransceiverSpec Cwdm8Bidi();        // custom 800G CWDM8 bidi (next generation)

}  // namespace lightwave::optics
