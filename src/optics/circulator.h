// Three-port optical circulator (Appendix B). The circulator converts a
// duplex transceiver into a bidirectional one: Tx enters port 1 and exits
// port 2 (the fiber); light arriving on port 2 exits port 3 (the Rx). Its
// imperfections — insertion loss per pass, port-1->3 crosstalk (isolation),
// and return loss — are exactly what the link-budget and MPI models consume.
#pragma once

#include "common/units.h"

namespace lightwave::optics {

struct CirculatorSpec {
  /// Loss for the 1->2 pass (Tx into fiber).
  common::Decibel insertion_loss_tx{0.8};
  /// Loss for the 2->3 pass (fiber into Rx).
  common::Decibel insertion_loss_rx{0.8};
  /// Direct leakage from port 1 into port 3, relative to Tx power. Stray
  /// light here is "effectively equivalent to having a reflection in the
  /// link" (§3.3.1); it beats with the received carrier as in-band crosstalk.
  common::Decibel isolation{-50.0};
  /// Reflection back out of port 2 toward the far end.
  common::Decibel return_loss{-50.0};
  /// Whether the circulator is integrated into the transceiver module
  /// (latest generation) or an external component (initial deployments);
  /// integration halves the connector count on the Tx side.
  bool integrated = true;
};

/// Pre-optimized circulator variants from the paper's narrative: the telecom
/// baseline that was re-engineered, the first datacom part, and the
/// integrated module.
CirculatorSpec TelecomBaselineCirculator();
CirculatorSpec DatacomCirculator();
CirculatorSpec IntegratedCirculator();

class Circulator {
 public:
  explicit Circulator(CirculatorSpec spec) : spec_(spec) {}

  const CirculatorSpec& spec() const { return spec_; }

  /// Power leaving port 2 given Tx power into port 1.
  common::DbmPower TxThrough(common::DbmPower tx) const {
    return tx - spec_.insertion_loss_tx;
  }
  /// Power reaching the Rx given power arriving at port 2.
  common::DbmPower RxThrough(common::DbmPower at_port2) const {
    return at_port2 - spec_.insertion_loss_rx;
  }
  /// Crosstalk power at the Rx caused by the local transmitter, relative to
  /// the local Tx launch power.
  common::DbmPower LeakageAtRx(common::DbmPower tx) const {
    return (tx + spec_.isolation) - spec_.insertion_loss_rx;
  }

 private:
  CirculatorSpec spec_;
};

}  // namespace lightwave::optics
