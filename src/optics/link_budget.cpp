#include "optics/link_budget.h"

#include <cassert>
#include <cmath>

namespace lightwave::optics {

using common::DbmPower;
using common::Decibel;

const LaneAnalysis& LinkAnalysis::WorstLane() const {
  assert(!lanes.empty());
  const LaneAnalysis* worst = &lanes.front();
  for (const auto& lane : lanes) {
    if (lane.raw_margin < worst->raw_margin) worst = &lane;
  }
  return *worst;
}

LinkBudget::LinkBudget(TransceiverSpec transceiver) : transceiver_(std::move(transceiver)) {}

LinkBudget& LinkBudget::WithCirculator(CirculatorSpec spec) {
  circulator_ = spec;
  return *this;
}

LinkBudget& LinkBudget::AddFiber(FiberSpan span, std::string label) {
  elements_.push_back(PathElement{
      .label = std::move(label),
      .insertion_loss = span.InsertionLoss(),
      .reflections = span.ReflectionPoints(),
  });
  spans_.push_back(std::move(span));
  return *this;
}

LinkBudget& LinkBudget::AddOcsHop(Decibel insertion_loss, Decibel return_loss,
                                  std::string label) {
  // The collimator interfaces at both the input and output side of the core
  // reflect; model them as two equal reflection points.
  elements_.push_back(PathElement{
      .label = std::move(label),
      .insertion_loss = insertion_loss,
      .reflections = {return_loss, return_loss},
  });
  return *this;
}

LinkBudget& LinkBudget::AddElement(PathElement element) {
  elements_.push_back(std::move(element));
  return *this;
}

LinkAnalysis LinkBudget::Analyze() const {
  const bool bidi = transceiver_.bidirectional;
  const Circulator circ(circulator_);

  // Forward insertion loss, Tx flange to Rx flange.
  Decibel path_loss{0.0};
  for (const auto& e : elements_) path_loss += e.insertion_loss;
  Decibel total_loss = path_loss;
  if (bidi) total_loss += circulator_.insertion_loss_tx + circulator_.insertion_loss_rx;

  const DbmPower tx = transceiver_.tx_power_per_lane;
  const DbmPower rx = tx - total_loss;

  // --- MPI aggregation (relative to the received carrier) -----------------
  // Each interferer term is computed as an absolute power at the Rx, then
  // referenced to the received signal power.
  std::vector<Decibel> interferers;

  if (bidi) {
    // (a) Local Tx light reflecting off interface k and returning into the
    // local Rx: travels loss(0..k) out, reflects with RL_k, travels
    // loss(0..k) back, then takes the circulator 2->3 pass.
    Decibel loss_to_k = circulator_.insertion_loss_tx;  // through port 1->2
    for (const auto& e : elements_) {
      for (const auto& rl : e.reflections) {
        const DbmPower back =
            tx - loss_to_k + rl - loss_to_k - circulator_.insertion_loss_rx;
        interferers.push_back(back - rx);
      }
      loss_to_k += e.insertion_loss;
    }
    // (b) Circulator port-1 -> port-3 leakage of the local Tx.
    interferers.push_back(circ.LeakageAtRx(tx) - rx);
    // (c) The far-end circulator's port-2 return loss reflects our outgoing
    // signal back to us: full path out, reflect, full path back.
    const DbmPower far_reflection = tx - circulator_.insertion_loss_tx - path_loss +
                                    circulator_.return_loss - path_loss -
                                    circulator_.insertion_loss_rx;
    interferers.push_back(far_reflection - rx);
  }

  // (d) Double reflections of the signal itself (present on duplex links
  // too): the signal reflects off interface j (moving backward), then off
  // interface i < j (forward again), arriving delayed. Extra loss relative
  // to the signal: RL_i + RL_j + 2*loss(i..j).
  {
    struct Point {
      Decibel rl;
      Decibel cum_loss_before;  // loss from Tx to this interface
    };
    std::vector<Point> points;
    Decibel cum{0.0};
    if (bidi) cum += circulator_.insertion_loss_tx;
    for (const auto& e : elements_) {
      for (const auto& rl : e.reflections) points.push_back({rl, cum});
      cum += e.insertion_loss;
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        const Decibel extra = points[i].rl + points[j].rl -
                              (points[j].cum_loss_before - points[i].cum_loss_before) * 2.0;
        interferers.push_back(extra);
      }
    }
  }

  const Decibel mpi = interferers.empty()
                          ? Decibel{-400.0}
                          : common::SumInterferers(interferers.data(),
                                                   static_cast<int>(interferers.size()));

  // --- Per-lane analysis ---------------------------------------------------
  LinkAnalysis analysis{
      .total_insertion_loss = total_loss,
      .rx_power = rx,
      .mpi = mpi,
      .lanes = {},
  };
  const WdmGrid grid = WdmGrid::Make(transceiver_.grid);
  const double chirp = transceiver_.laser == LaserKind::kEml ? 0.3 : 3.0;
  for (const auto& ch : grid.channels()) {
    Decibel dispersion{0.0};
    for (const auto& span : spans_) {
      dispersion += span.DispersionPenalty(ch.center, transceiver_.lane_rate_gbps, chirp);
    }
    const Decibel raw_margin = (rx - dispersion) - transceiver_.rx_sensitivity;
    analysis.lanes.push_back(LaneAnalysis{
        .lane = ch.index,
        .wavelength = ch.center,
        .rx_power = rx - dispersion,
        .dispersion_penalty = dispersion,
        .raw_margin = raw_margin,
    });
  }
  return analysis;
}

LinkBudget MakeSuperpodLink(const TransceiverSpec& transceiver, Decibel ocs_insertion_loss,
                            Decibel ocs_return_loss, double fiber_km) {
  LinkBudget budget(transceiver);
  budget.WithCirculator(IntegratedCirculator());
  budget.AddFiber(FiberSpan(fiber_km / 2.0, /*connectors=*/2, /*splices=*/1), "fiber-near");
  budget.AddOcsHop(ocs_insertion_loss, ocs_return_loss, "palomar");
  budget.AddFiber(FiberSpan(fiber_km / 2.0, /*connectors=*/2, /*splices=*/1), "fiber-far");
  return budget;
}

}  // namespace lightwave::optics
