#include "optics/mux.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace lightwave::optics {

using common::Decibel;

MuxSpec Cwdm4MuxSpec() { return MuxSpec{}; }

MuxSpec Cwdm8MuxSpec() {
  return MuxSpec{
      .drop_loss = Decibel{0.45},
      .express_loss_per_stage = Decibel{0.15},
      .adjacent_isolation = Decibel{-26.0},
      .nonadjacent_isolation = Decibel{-42.0},
  };
}

ThinFilmMux::ThinFilmMux(WdmGrid grid, MuxSpec spec)
    : grid_(std::move(grid)), spec_(spec) {}

Decibel ThinFilmMux::LaneLoss(int lane) const {
  assert(lane >= 0 && lane < grid_.lane_count());
  // Channel `lane` passes `lane` express stages before its own drop filter.
  return spec_.drop_loss + spec_.express_loss_per_stage * static_cast<double>(lane);
}

Decibel ThinFilmMux::WorstLaneLoss() const { return LaneLoss(grid_.lane_count() - 1); }

Decibel ThinFilmMux::CrosstalkAt(int lane) const {
  assert(lane >= 0 && lane < grid_.lane_count());
  std::vector<Decibel> interferers;
  for (int other = 0; other < grid_.lane_count(); ++other) {
    if (other == lane) continue;
    const bool adjacent = std::abs(other - lane) == 1;
    interferers.push_back(adjacent ? spec_.adjacent_isolation
                                   : spec_.nonadjacent_isolation);
  }
  return interferers.empty()
             ? Decibel{-400.0}
             : common::SumInterferers(interferers.data(),
                                      static_cast<int>(interferers.size()));
}

Decibel MuxDemuxPairLoss(const ThinFilmMux& mux, int lane) {
  return mux.LaneLoss(lane) * 2.0;
}

}  // namespace lightwave::optics
