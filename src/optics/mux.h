// Thin-film-filter wavelength mux/demux (§3.3.1): "to support the higher
// loss budget due to the OCS and circulators, low-loss optical components
// (thin-film-based wavelength mux/demux) ... were used to minimize optical
// path loss." A TFF mux is a cascade of bandpass filters: each channel
// enters/exits at a different stage, so insertion loss grows along the
// cascade, and finite filter isolation leaks neighbouring channels into the
// receiver as in-band crosstalk (one more interferer for the MPI budget).
#pragma once

#include <vector>

#include "common/units.h"
#include "optics/wdm.h"

namespace lightwave::optics {

struct MuxSpec {
  /// Loss of a single filter pass (the channel's own drop stage).
  common::Decibel drop_loss{0.3};
  /// Loss added per express pass through an earlier stage's filter.
  common::Decibel express_loss_per_stage{0.12};
  /// Adjacent-channel isolation of one filter (power leaking through).
  common::Decibel adjacent_isolation{-30.0};
  /// Non-adjacent channels see at least this isolation.
  common::Decibel nonadjacent_isolation{-45.0};
};

/// Tighter 10 nm spacing (CWDM8) needs sharper filters: slightly higher
/// drop loss and less adjacent isolation for the same technology.
MuxSpec Cwdm4MuxSpec();
MuxSpec Cwdm8MuxSpec();

class ThinFilmMux {
 public:
  ThinFilmMux(WdmGrid grid, MuxSpec spec);

  const WdmGrid& grid() const { return grid_; }
  const MuxSpec& spec() const { return spec_; }

  /// Insertion loss for one lane through the mux (or demux — reciprocal):
  /// its own drop stage plus an express pass per earlier stage.
  common::Decibel LaneLoss(int lane) const;
  /// Worst lane (deepest in the cascade).
  common::Decibel WorstLaneLoss() const;

  /// Aggregate in-band crosstalk at a lane's receiver from every other lane
  /// (relative to the lane's own carrier, equal launch powers assumed).
  common::Decibel CrosstalkAt(int lane) const;

 private:
  WdmGrid grid_;
  MuxSpec spec_;
};

/// Mux + demux pair loss for a lane (both ends of the link).
common::Decibel MuxDemuxPairLoss(const ThinFilmMux& mux, int lane);

}  // namespace lightwave::optics
