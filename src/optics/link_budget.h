// End-to-end optical link budget for a (possibly bidirectional) path:
//   Tx -> [circulator] -> fiber -> OCS hop(s) -> fiber -> [circulator] -> Rx
// Computes received power, aggregates every reflection along the path into a
// single multi-path-interference (MPI) level relative to the received
// carrier, and evaluates chromatic-dispersion penalties per WDM lane. The
// phy::BerModel consumes the result to produce Fig. 11-style curves.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "optics/circulator.h"
#include "optics/fiber.h"
#include "optics/transceiver.h"

namespace lightwave::optics {

/// One lossy element of the optical path, with the return losses of its
/// reflective interfaces (relative to the signal incident on them).
struct PathElement {
  std::string label;
  common::Decibel insertion_loss{0.0};
  std::vector<common::Decibel> reflections;
};

struct LaneAnalysis {
  int lane = 0;
  common::Nanometers wavelength;
  common::DbmPower rx_power;  // after dispersion penalty
  common::Decibel dispersion_penalty;
  /// Unallocated margin against the transceiver's clean-link sensitivity
  /// (before MPI; the PHY layer turns MPI into a penalty).
  common::Decibel raw_margin;
};

struct LinkAnalysis {
  /// Total path insertion loss (Tx flange to Rx flange).
  common::Decibel total_insertion_loss;
  /// Received power, dispersion not included.
  common::DbmPower rx_power;
  /// Aggregate multi-path interference relative to the received carrier.
  /// Includes: local-Tx reflections re-entering the Rx (bidi links),
  /// circulator port-1->3 leakage, and double reflections of the signal.
  common::Decibel mpi;
  std::vector<LaneAnalysis> lanes;

  const LaneAnalysis& WorstLane() const;
};

/// Builder for a symmetric link between two identical transceivers.
class LinkBudget {
 public:
  explicit LinkBudget(TransceiverSpec transceiver);

  /// Installs the circulators used when the transceiver is bidirectional.
  LinkBudget& WithCirculator(CirculatorSpec spec);
  /// Appends a fiber span (tracked for both loss/reflections and
  /// chromatic-dispersion accumulation).
  LinkBudget& AddFiber(FiberSpan span, std::string label = "fiber");
  /// Appends an OCS hop: insertion loss through the core plus two collimator
  /// reflection interfaces, the dominant reflection points in the fabric
  /// (§4.1.1).
  LinkBudget& AddOcsHop(common::Decibel insertion_loss, common::Decibel return_loss,
                        std::string label = "ocs");
  /// Appends an arbitrary element.
  LinkBudget& AddElement(PathElement element);

  /// Analyzes the A->B direction (paths are symmetric by construction).
  LinkAnalysis Analyze() const;

  const TransceiverSpec& transceiver() const { return transceiver_; }
  const CirculatorSpec& circulator() const { return circulator_; }

 private:
  TransceiverSpec transceiver_;
  CirculatorSpec circulator_ = IntegratedCirculator();
  std::vector<PathElement> elements_;
  std::vector<FiberSpan> spans_;
};

/// Canonical intra-building superpod link: patch fiber, one OCS hop, patch
/// fiber. `ocs_insertion_loss`/`ocs_return_loss` normally come from a
/// sampled ocs::PalomarSwitch path.
LinkBudget MakeSuperpodLink(const TransceiverSpec& transceiver,
                            common::Decibel ocs_insertion_loss,
                            common::Decibel ocs_return_loss, double fiber_km = 0.3);

}  // namespace lightwave::optics
