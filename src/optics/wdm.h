// Coarse wavelength-division-multiplexing grids. The paper's DCN transceivers
// use the standard CWDM4 grid (4 lanes on 20 nm spacing); the ML CWDM8 bidi
// transceiver packs 8 lanes on 10 nm spacing into the same 80 nm spectral
// width (§3.3.1).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace lightwave::optics {

enum class WdmGridKind {
  kCwdm4,  // 4 lanes, 20 nm spacing, centered 1271..1331 nm
  kCwdm8,  // 8 lanes, 10 nm spacing, centered 1271..1341 nm
};

struct WdmChannel {
  int index = 0;
  common::Nanometers center;
  common::Nanometers width;  // channel passband allotted to this lane
};

/// An immutable wavelength plan.
class WdmGrid {
 public:
  static WdmGrid Make(WdmGridKind kind);

  WdmGridKind kind() const { return kind_; }
  int lane_count() const { return static_cast<int>(channels_.size()); }
  const WdmChannel& channel(int lane) const { return channels_[static_cast<std::size_t>(lane)]; }
  const std::vector<WdmChannel>& channels() const { return channels_; }
  common::Nanometers spacing() const { return spacing_; }

  /// Total spectral width occupied (first channel low edge to last high edge).
  common::Nanometers SpectralWidth() const;

  /// True when every channel of `other` coincides with one of this grid's
  /// channel passbands; governs transceiver interoperability across
  /// generations (§3.3.1 backward compatibility).
  bool Overlaps(const WdmGrid& other) const;

  std::string Name() const;

 private:
  WdmGrid(WdmGridKind kind, common::Nanometers spacing, std::vector<WdmChannel> channels)
      : kind_(kind), spacing_(spacing), channels_(std::move(channels)) {}

  WdmGridKind kind_;
  common::Nanometers spacing_;
  std::vector<WdmChannel> channels_;
};

/// Zero-dispersion wavelength of standard G.652 single-mode fiber; chromatic
/// dispersion grows as channels move away from it (used by fiber.h).
inline constexpr common::Nanometers kZeroDispersionWavelength{1310.0};

/// The out-of-band monitor wavelength used by the Palomar camera path.
inline constexpr common::Nanometers kMonitorWavelength{850.0};

}  // namespace lightwave::optics
