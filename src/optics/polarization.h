// Polarization optics for the integrated circulator (Appendix B, Fig. B.1).
// The circulator routes light by manipulating its polarization state with
// three elements: polarizing beam splitters (PBS), a non-reciprocal Faraday
// rotator (±45° depending on propagation direction), and a reciprocal
// half-wave plate (+45° both ways). This module implements Jones calculus
// (complex 2-vectors and 2x2 matrices) and composes those elements into a
// circulator whose cyclic 1→2→3 connectivity — and whose isolation
// degradation under component imperfections — emerges from the physics
// rather than being asserted.
#pragma once

#include <complex>

namespace lightwave::optics {

/// Jones vector: complex amplitudes of the s and p polarization components.
struct JonesVector {
  std::complex<double> s{0.0, 0.0};
  std::complex<double> p{0.0, 0.0};

  double Power() const { return std::norm(s) + std::norm(p); }
};

/// 2x2 complex Jones matrix acting on (s, p).
struct JonesMatrix {
  std::complex<double> ss{1.0, 0.0}, sp{0.0, 0.0};
  std::complex<double> ps{0.0, 0.0}, pp{1.0, 0.0};

  JonesVector operator*(const JonesVector& v) const {
    return JonesVector{ss * v.s + sp * v.p, ps * v.s + pp * v.p};
  }
  JonesMatrix operator*(const JonesMatrix& o) const {
    return JonesMatrix{ss * o.ss + sp * o.ps, ss * o.sp + sp * o.pp,
                       ps * o.ss + pp * o.ps, ps * o.sp + pp * o.pp};
  }
};

/// Rotation of the polarization plane by `radians`.
JonesMatrix Rotator(double radians);

/// Linear polarizer passing the s (horizontal) or p (vertical) component —
/// the transmit/reflect arms of an ideal PBS.
JonesMatrix PolarizerS();
JonesMatrix PolarizerP();

/// Half-wave plate with its fast axis at `axis_radians`: reciprocal, rotates
/// linear polarization by 2*axis (and mirrors handedness).
JonesMatrix HalfWavePlate(double axis_radians);

/// Faraday rotator: rotates by +angle for forward propagation and +angle
/// AGAIN for backward propagation (non-reciprocal — unlike a wave plate the
/// sense does not invert with direction). `Forward`/`Backward` give the
/// matrices in a fixed lab frame.
JonesMatrix FaradayForward(double angle_radians);
JonesMatrix FaradayBackward(double angle_radians);

/// The Appendix-B integrated circulator built from a 45° HWP and a 45°
/// Faraday rotator between PBS stages, with optional imperfection:
/// `rotation_error_radians` offsets both rotators (temperature/wavelength
/// dependence), which leaks power into the isolated port.
class PolarizationCirculator {
 public:
  explicit PolarizationCirculator(double rotation_error_radians = 0.0);

  /// Fraction of power entering port 1 (s-polarized Tx laser) that exits
  /// port 2 toward the fiber.
  double Port1To2Power() const;
  /// Fraction of power entering port 2 (arbitrary polarization, given as a
  /// Jones vector) that exits port 3 toward the receiver.
  double Port2To3Power(const JonesVector& input) const;
  /// Leakage: fraction of port-1 power that exits port 3 directly (the
  /// crosstalk/isolation figure; 0 for an ideal device).
  double Port1To3Leakage() const;

  /// Isolation in dB (10*log10 of the leakage); -inf clamps to -100 dB.
  double IsolationDb() const;

 private:
  double error_;
};

}  // namespace lightwave::optics
