#include "optics/wdm.h"

#include <cmath>

namespace lightwave::optics {

WdmGrid WdmGrid::Make(WdmGridKind kind) {
  std::vector<WdmChannel> channels;
  double spacing_nm = 0.0;
  double first_nm = 1271.0;
  int lanes = 0;
  switch (kind) {
    case WdmGridKind::kCwdm4:
      spacing_nm = 20.0;
      lanes = 4;
      break;
    case WdmGridKind::kCwdm8:
      spacing_nm = 10.0;
      lanes = 8;
      break;
  }
  channels.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    channels.push_back(WdmChannel{
        .index = i,
        .center = common::Nanometers{first_nm + spacing_nm * i},
        .width = common::Nanometers{spacing_nm},
    });
  }
  return WdmGrid(kind, common::Nanometers{spacing_nm}, std::move(channels));
}

common::Nanometers WdmGrid::SpectralWidth() const {
  const double lo = channels_.front().center.nm - channels_.front().width.nm / 2.0;
  const double hi = channels_.back().center.nm + channels_.back().width.nm / 2.0;
  return common::Nanometers{hi - lo};
}

bool WdmGrid::Overlaps(const WdmGrid& other) const {
  for (const auto& theirs : other.channels_) {
    bool found = false;
    for (const auto& ours : channels_) {
      const double half = ours.width.nm / 2.0;
      if (std::abs(theirs.center.nm - ours.center.nm) <= half) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string WdmGrid::Name() const {
  switch (kind_) {
    case WdmGridKind::kCwdm4: return "CWDM4";
    case WdmGridKind::kCwdm8: return "CWDM8";
  }
  return "?";
}

}  // namespace lightwave::optics
