// Adaptive equalization (§3.3.1): over the 80 nm CWDM range, chromatic
// dispersion closes the eye at >= 100 Gb/s lane rates; the DSP mitigates it
// with equalizers (feed-forward plus nonlinear/decision-feedback stages).
// This module implements a discrete-time ISI channel derived from the
// fiber's pulse spread, an LMS-adapted feed-forward equalizer (FFE) with an
// optional decision-feedback (DFE) section, and a measurement harness that
// reports pre- vs post-equalization BER — the mechanism behind "this
// impairment can be mitigated ... along with the use of nonlinear
// equalizers".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "optics/fiber.h"

namespace lightwave::phy {

/// Discrete-time symbol-spaced channel: y_n = sum_k taps[k] * x_{n-k} + w_n.
struct IsiChannel {
  std::vector<double> taps;  // taps[0] is the cursor
  double noise_sigma = 0.0;  // AWGN at the slicer input, in symbol units
};

/// Three-tap channel for a lane whose dispersion spreads the pulse by
/// `spread_fraction` of a symbol period (0 = clean, 0.5 = heavy ISI):
/// [pre, main, post] with energy leaking symmetrically off the cursor.
IsiChannel DispersiveChannel(double spread_fraction, double noise_sigma);

/// Convenience: channel for one WDM lane over a span at a lane rate, using
/// the fiber model's pulse-spread estimate.
IsiChannel ChannelForLane(const optics::FiberSpan& span, common::Nanometers wavelength,
                          common::GbitPerSec lane_rate, double chirp_factor,
                          double noise_sigma);

/// LMS-adapted feed-forward equalizer with an optional decision-feedback
/// section. Symbol-spaced, real-valued (intensity detection).
class AdaptiveEqualizer {
 public:
  AdaptiveEqualizer(int ffe_taps, int dfe_taps, double mu);

  /// Processes one received sample; returns the equalized soft value using
  /// past decisions for the DFE section.
  double Equalize(double sample);
  /// LMS update toward `target` (training symbol or slicer decision) for
  /// the most recent Equalize() call.
  void Adapt(double target);
  /// Records the decision that feeds the DFE history.
  void PushDecision(double decision);

  const std::vector<double>& ffe_weights() const { return ffe_; }
  const std::vector<double>& dfe_weights() const { return dfe_; }

 private:
  std::vector<double> ffe_;
  std::vector<double> dfe_;
  std::vector<double> input_history_;     // most recent first
  std::vector<double> decision_history_;  // most recent first
  double mu_;
  double last_output_ = 0.0;
};

struct EqualizedLinkResult {
  double pre_eq_ber = 0.0;   // slicer on the raw channel output
  double post_eq_ber = 0.0;  // slicer after FFE(+DFE)
  double residual_isi = 0.0; // post-equalization tap-energy off the cursor
};

struct EqualizerExperimentConfig {
  std::uint64_t symbols = 200'000;
  std::uint64_t training_symbols = 4'000;  // known-pattern LMS phase
  int ffe_taps = 7;
  int dfe_taps = 2;
  double mu = 2e-3;
  std::uint64_t seed = 99;
};

/// Runs PAM4 through the channel with and without equalization.
EqualizedLinkResult MeasureEqualizedLink(const IsiChannel& channel,
                                         const EqualizerExperimentConfig& config = {});

}  // namespace lightwave::phy
