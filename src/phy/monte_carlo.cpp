#include "phy/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace lightwave::phy {

using common::DbmPower;
using common::Decibel;

namespace {

/// Gray mapping for PAM4 levels 0..3 -> 2 bits.
constexpr int kGray[4] = {0b00, 0b01, 0b11, 0b10};

int HammingDistance2Bit(int a, int b) {
  const int x = a ^ b;
  return (x & 1) + ((x >> 1) & 1);
}

}  // namespace

MonteCarloChannel::MonteCarloChannel(const BerModel& model, Decibel mpi,
                                     MonteCarloConfig config)
    : model_(model), mpi_(mpi), config_(config) {}

MonteCarloResult MonteCarloChannel::Run(DbmPower rx) {
  const bool pam4 = model_.modulation() == optics::Modulation::kPam4;
  const int levels = pam4 ? 4 : 2;
  const double bits_per_symbol = pam4 ? 2.0 : 1.0;

  const double p_mw = rx.milliwatts();
  const double d = pam4 ? p_mw / 1.5 : 2.0 * p_mw;  // level spacing
  const double sigma_th = model_.thermal_sigma();

  // Effective interferer after optional OIM notch suppression.
  Decibel mpi_eff = mpi_;
  if (config_.oim_enabled) mpi_eff = OimFilter(config_.oim).Mitigate(mpi_eff);
  const double pi_mw = p_mw * mpi_eff.linear();
  const int tones = std::max(1, config_.interferer_tones);

  // Each chunk is a self-contained experiment: its own counter-based RNG
  // stream and its own interferer phase state. The per-chunk error counts
  // are summed in chunk order, so the total is byte-identical at any
  // thread count.
  const std::uint64_t chunk_symbols = std::max<std::uint64_t>(1, config_.symbols_per_chunk);
  const std::uint64_t seed = config_.seed;
  const std::uint64_t errors = common::parallel::ParallelReduce<std::uint64_t>(
      config_.symbols, chunk_symbols, 0,
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) -> std::uint64_t {
        common::Rng rng = common::Rng::Stream(seed, chunk);
        std::vector<double> phases(static_cast<std::size_t>(tones));
        for (auto& p : phases) p = rng.Uniform(0.0, 2.0 * M_PI);

        std::uint64_t bit_errors = 0;
        for (std::uint64_t s = begin; s < end; ++s) {
          const int tx_level =
              static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(levels)));
          const double p_level = tx_level * d;

          // Per-tone amplitude chosen so the aggregate beat variance equals
          // the analytic model's kBeatVariance * p_level * p_int.
          const double tone_amplitude =
              std::sqrt(2.0 * kBeatVariance * p_level * pi_mw / tones);
          double beat = 0.0;
          for (auto& phase : phases) {
            phase += rng.Gaussian(0.0, config_.phase_walk_std);
            beat += tone_amplitude * std::cos(phase);
          }
          const double noise = rng.Gaussian(0.0, sigma_th);
          const double received = p_level + beat + noise;

          // Slicer: nearest level.
          int rx_level = static_cast<int>(std::lround(received / d));
          rx_level = std::max(0, std::min(levels - 1, rx_level));

          if (rx_level != tx_level) {
            if (pam4) {
              bit_errors += static_cast<std::uint64_t>(
                  HammingDistance2Bit(kGray[tx_level], kGray[rx_level]));
            } else {
              ++bit_errors;
            }
          }
        }
        return bit_errors;
      },
      [](std::uint64_t acc, std::uint64_t partial) { return acc + partial; });

  MonteCarloResult result;
  result.bits = config_.symbols * static_cast<std::uint64_t>(bits_per_symbol);
  result.bit_errors = errors;
  return result;
}

}  // namespace lightwave::phy
