// Optical interference mitigation (OIM, §3.3.2 / [66]): the dominant
// carrier-to-carrier beat noise of a bidirectional link has a narrow-band
// spectral signature. The DSP reconstructs it in the digital domain and
// removes it with a notch filter whose center frequency tracks the offset
// between the source and interfering carriers. We model the filter by the
// beat-noise power suppression it achieves, degraded when the frequency
// offset drifts outside the tracking range.
#pragma once

#include "common/units.h"

namespace lightwave::phy {

struct OimConfig {
  /// Beat-noise power suppression when locked (production DSP ~12 dB).
  common::Decibel suppression{12.0};
  /// Frequency-offset tracking range of the notch center (GHz).
  double tracking_range_ghz = 15.0;
  /// Residual suppression when the interferer falls outside the tracking
  /// range (the notch is parked; only partial overlap remains).
  common::Decibel out_of_range_suppression{1.0};
};

class OimFilter {
 public:
  OimFilter() : OimFilter(OimConfig{}) {}
  explicit OimFilter(OimConfig config) : config_(config) {}

  const OimConfig& config() const { return config_; }

  /// Effective interference level after mitigation: `mpi` is the aggregate
  /// interferer power relative to the carrier; `offset_ghz` the
  /// carrier-to-interferer frequency offset the tracker must follow.
  common::Decibel Mitigate(common::Decibel mpi, double offset_ghz = 0.0) const;

 private:
  OimConfig config_;
};

/// Dynamic notch tracking (§3.3.2): "the center frequency of the notch
/// filter is determined by monitoring the frequency offset between the
/// source and the interfering carrier, also in the digital domain." The
/// beat frequency drifts with laser temperature; the tracker measures the
/// offset each update and slews the notch after it, with a rate limit. The
/// achieved suppression is a Lorentzian function of the residual tracking
/// error (a notch only suppresses what sits inside it).
struct OimTrackerConfig {
  /// Fraction of the measured offset error corrected per update.
  double loop_gain = 0.5;
  /// Frequency-estimator noise per measurement (GHz rms).
  double measurement_noise_ghz = 0.05;
  /// Maximum notch retune per update (DSP NCO slew limit).
  double max_slew_ghz = 0.5;
  /// Full-width of the notch; suppression halves when the residual error
  /// reaches half this width.
  double notch_width_ghz = 2.0;
  common::Decibel locked_suppression{12.0};
};

class OimTracker {
 public:
  OimTracker() : OimTracker(OimTrackerConfig{}) {}
  explicit OimTracker(OimTrackerConfig config) : config_(config) {}

  const OimTrackerConfig& config() const { return config_; }

  /// One update interval: estimate the interferer offset (noisy), slew the
  /// notch toward it (rate limited). `noise` supplies estimator noise.
  void Step(double true_offset_ghz, double noise_ghz = 0.0);

  double notch_center_ghz() const { return notch_center_ghz_; }
  double TrackingErrorGhz(double true_offset_ghz) const {
    return true_offset_ghz - notch_center_ghz_;
  }

  /// Suppression achieved at the current notch position for an interferer
  /// at `true_offset_ghz`: Lorentzian roll-off in the tracking error.
  common::Decibel SuppressionFor(double true_offset_ghz) const;

  /// Effective interference after mitigation by the tracked notch.
  common::Decibel Mitigate(common::Decibel mpi, double true_offset_ghz) const;

 private:
  OimTrackerConfig config_;
  double notch_center_ghz_ = 0.0;
};

}  // namespace lightwave::phy
