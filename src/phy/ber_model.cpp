#include "phy/ber_model.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/math.h"

namespace lightwave::phy {

using common::DbmPower;
using common::Decibel;
using common::QFunction;
using common::QInverse;

double RequiredQ(optics::Modulation modulation, double ber) {
  switch (modulation) {
    case optics::Modulation::kNrz: return QInverse(ber);
    case optics::Modulation::kPam4: return QInverse(ber / 0.75);
  }
  return QInverse(ber);
}

BerModel::BerModel(optics::Modulation modulation, DbmPower sensitivity, double anchor_ber)
    : modulation_(modulation), sensitivity_(sensitivity), sigma_th_(0.0) {
  const double q_anchor = RequiredQ(modulation, anchor_ber);
  const double p_mw = sensitivity.milliwatts();
  // Level spacing at the anchor power; decision distance is d/2.
  const double d = modulation == optics::Modulation::kPam4 ? p_mw / 1.5 : 2.0 * p_mw;
  sigma_th_ = (d / 2.0) / q_anchor;
}

BerModel BerModel::ForTransceiver(const optics::TransceiverSpec& spec) {
  return BerModel(spec.modulation, spec.rx_sensitivity);
}

double BerModel::BerAt(double p_mw, double pi_mw) const {
  if (modulation_ == optics::Modulation::kNrz) {
    const double d = 2.0 * p_mw;
    // Beat noise on the "one" level only; "zero" level carries no carrier.
    const double sigma1 = std::sqrt(sigma_th_ * sigma_th_ + kBeatVariance * d * pi_mw);
    const double sigma0 = sigma_th_;
    return 0.5 * (QFunction((d / 2.0) / sigma1) + QFunction((d / 2.0) / sigma0));
  }
  // PAM4: levels l*d for l in 0..3; Gray coding -> BER ~ SER/2. Level l has
  // `boundaries_l` adjacent decision boundaries (1 for the outer levels,
  // 2 for the inner ones).
  const double d = p_mw / 1.5;
  double ser = 0.0;
  for (int l = 0; l < 4; ++l) {
    const double pl = l * d;
    const double sigma = std::sqrt(sigma_th_ * sigma_th_ + kBeatVariance * pl * pi_mw);
    const double boundaries = (l == 0 || l == 3) ? 1.0 : 2.0;
    ser += 0.25 * boundaries * QFunction((d / 2.0) / sigma);
  }
  return 0.5 * ser;
}

double BerModel::PreFecBer(DbmPower rx, Decibel mpi) const {
  const double p_mw = rx.milliwatts();
  const double pi_mw = p_mw * mpi.linear();
  return BerAt(p_mw, pi_mw);
}

double BerModel::PreFecBerWithOim(DbmPower rx, Decibel mpi, const OimFilter& oim,
                                  double offset_ghz) const {
  return PreFecBer(rx, oim.Mitigate(mpi, offset_ghz));
}

DbmPower BerModel::SensitivityAt(double target_ber, Decibel mpi) const {
  // BER is monotone decreasing in power (the MPI term scales with power on
  // both signal and interferer, so the floor is power independent; below the
  // floor no power reaches the target).
  double lo = -40.0, hi = 20.0;
  if (PreFecBer(DbmPower{hi}, mpi) > target_ber) return DbmPower{1e9};  // floored
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (PreFecBer(DbmPower{mid}, mpi) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return DbmPower{hi};
}

Decibel BerModel::OimGain(Decibel mpi, const OimFilter& oim, double target_ber) const {
  const DbmPower without = SensitivityAt(target_ber, mpi);
  const DbmPower with = SensitivityAt(target_ber, oim.Mitigate(mpi));
  if (without.value() >= 1e9) return Decibel{std::numeric_limits<double>::infinity()};
  return without - with;
}

}  // namespace lightwave::phy
