// Symbol-level Monte-Carlo BER measurement — the "measured" counterpart
// (Fig. 11b) to the analytic model. Transmits random PAM4/NRZ symbols
// through the thermal + MPI channel, applies the slicer, and counts bit
// errors. The interferer is modelled in the field domain: the photocurrent
// beat term is 2*sqrt(p_signal * p_interferer) * cos(phase), with the phase
// performing a random walk (the beat is narrow-band, which is what makes the
// OIM notch effective).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"
#include "phy/oim.h"

namespace lightwave::phy {

struct MonteCarloConfig {
  std::uint64_t symbols = 2'000'000;
  std::uint64_t seed = 0x1337;
  /// Symbols per parallel chunk. Chunk `c` draws from the independent
  /// counter-based stream common::Rng::Stream(seed, c) and starts its own
  /// interferer phase state, so the result depends only on (seed, symbols,
  /// symbols_per_chunk) — never on the thread count. Chunks are long
  /// enough that each one's beat-phase walk reaches the stationary regime
  /// the analytic model assumes.
  std::uint64_t symbols_per_chunk = 1u << 16;
  /// Beat-phase random-walk step per symbol (radians); well below 2*pi keeps
  /// the interferer narrow-band (what the OIM notch assumes) while still
  /// decorrelating the beat over a multi-million-symbol run.
  double phase_walk_std = 0.7;
  /// Number of independent reflection tones making up the interferer; the
  /// aggregate converges toward the Gaussian statistics the analytic model
  /// assumes (a real path has many reflection points).
  int interferer_tones = 8;
  bool oim_enabled = false;
  OimConfig oim;
};

struct MonteCarloResult {
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  double Ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(bit_errors) / static_cast<double>(bits);
  }
};

class MonteCarloChannel {
 public:
  /// `model` supplies the calibrated thermal noise; `mpi` the aggregate
  /// interferer level relative to carrier.
  MonteCarloChannel(const BerModel& model, common::Decibel mpi, MonteCarloConfig config);

  /// Runs the experiment at received power `rx`. Executes on the parallel
  /// runtime (common/parallel.h): byte-identical for a given config at any
  /// LIGHTWAVE_THREADS setting.
  MonteCarloResult Run(common::DbmPower rx);

 private:
  const BerModel& model_;
  common::Decibel mpi_;
  MonteCarloConfig config_;
};

}  // namespace lightwave::phy
