// Symbol-level Monte-Carlo BER measurement — the "measured" counterpart
// (Fig. 11b) to the analytic model. Transmits random PAM4/NRZ symbols
// through the thermal + MPI channel, applies the slicer, and counts bit
// errors. The interferer is modelled in the field domain: the photocurrent
// beat term is 2*sqrt(p_signal * p_interferer) * cos(phase), with the phase
// performing a random walk (the beat is narrow-band, which is what makes the
// OIM notch effective).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"
#include "phy/oim.h"

namespace lightwave::phy {

struct MonteCarloConfig {
  std::uint64_t symbols = 2'000'000;
  std::uint64_t seed = 0x1337;
  /// Beat-phase random-walk step per symbol (radians); well below 2*pi keeps
  /// the interferer narrow-band (what the OIM notch assumes) while still
  /// decorrelating the beat over a multi-million-symbol run.
  double phase_walk_std = 0.7;
  /// Number of independent reflection tones making up the interferer; the
  /// aggregate converges toward the Gaussian statistics the analytic model
  /// assumes (a real path has many reflection points).
  int interferer_tones = 8;
  bool oim_enabled = false;
  OimConfig oim;
};

struct MonteCarloResult {
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  double Ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(bit_errors) / static_cast<double>(bits);
  }
};

class MonteCarloChannel {
 public:
  /// `model` supplies the calibrated thermal noise; `mpi` the aggregate
  /// interferer level relative to carrier.
  MonteCarloChannel(const BerModel& model, common::Decibel mpi, MonteCarloConfig config);

  /// Runs the experiment at received power `rx`.
  MonteCarloResult Run(common::DbmPower rx);

 private:
  const BerModel& model_;
  common::Decibel mpi_;
  MonteCarloConfig config_;
};

}  // namespace lightwave::phy
