#include "phy/equalizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lightwave::phy {

IsiChannel DispersiveChannel(double spread_fraction, double noise_sigma) {
  assert(spread_fraction >= 0.0 && spread_fraction < 1.0);
  IsiChannel channel;
  const double leak = spread_fraction / 2.0;
  channel.taps = {1.0 - spread_fraction, leak, leak * 0.6};
  // Normalize energy so the comparison across spreads is fair.
  double energy = 0.0;
  for (double t : channel.taps) energy += t * t;
  const double scale = 1.0 / std::sqrt(energy);
  for (double& t : channel.taps) t *= scale;
  channel.noise_sigma = noise_sigma;
  return channel;
}

IsiChannel ChannelForLane(const optics::FiberSpan& span, common::Nanometers wavelength,
                          common::GbitPerSec lane_rate, double chirp_factor,
                          double noise_sigma) {
  // Reconstruct the pulse-spread fraction the fiber model uses internally.
  const double baud = lane_rate.gbps * 1e9 / 2.0;
  const double d_total = std::abs(span.DispersionPsPerNm(wavelength));
  const double c_nm_per_s = 299792458.0 * 1e9;
  const double width_nm =
      wavelength.nm * wavelength.nm / c_nm_per_s * baud * (1.0 + chirp_factor);
  const double spread_ps = d_total * width_nm;
  const double symbol_ps = 1e12 / baud;
  const double eps = std::min(0.9, spread_ps / symbol_ps);
  return DispersiveChannel(eps, noise_sigma);
}

AdaptiveEqualizer::AdaptiveEqualizer(int ffe_taps, int dfe_taps, double mu)
    : ffe_(static_cast<std::size_t>(ffe_taps), 0.0),
      dfe_(static_cast<std::size_t>(dfe_taps), 0.0),
      input_history_(static_cast<std::size_t>(ffe_taps), 0.0),
      decision_history_(static_cast<std::size_t>(std::max(1, dfe_taps)), 0.0),
      mu_(mu) {
  assert(ffe_taps >= 1 && dfe_taps >= 0 && mu > 0.0);
  // Center-spike initialization: identity filter at the cursor tap.
  ffe_[static_cast<std::size_t>(ffe_taps / 2)] = 1.0;
}

double AdaptiveEqualizer::Equalize(double sample) {
  std::rotate(input_history_.rbegin(), input_history_.rbegin() + 1, input_history_.rend());
  input_history_[0] = sample;
  double out = 0.0;
  for (std::size_t i = 0; i < ffe_.size(); ++i) out += ffe_[i] * input_history_[i];
  for (std::size_t i = 0; i < dfe_.size(); ++i) out -= dfe_[i] * decision_history_[i];
  last_output_ = out;
  return out;
}

void AdaptiveEqualizer::Adapt(double target) {
  const double error = last_output_ - target;
  for (std::size_t i = 0; i < ffe_.size(); ++i) {
    ffe_[i] -= mu_ * error * input_history_[i];
  }
  for (std::size_t i = 0; i < dfe_.size(); ++i) {
    dfe_[i] += mu_ * error * decision_history_[i];
  }
}

void AdaptiveEqualizer::PushDecision(double decision) {
  if (decision_history_.empty()) return;
  std::rotate(decision_history_.rbegin(), decision_history_.rbegin() + 1,
              decision_history_.rend());
  decision_history_[0] = decision;
}

namespace {

/// PAM4 levels at unit spacing, symmetric around zero.
constexpr double kLevels[4] = {-3.0, -1.0, 1.0, 3.0};

int Slice(double v) {
  if (v < -2.0) return 0;
  if (v < 0.0) return 1;
  if (v < 2.0) return 2;
  return 3;
}

int GrayBitsDiffer(int a, int b) {
  constexpr int kGray[4] = {0b00, 0b01, 0b11, 0b10};
  const int x = kGray[a] ^ kGray[b];
  return (x & 1) + ((x >> 1) & 1);
}

}  // namespace

EqualizedLinkResult MeasureEqualizedLink(const IsiChannel& channel,
                                         const EqualizerExperimentConfig& config) {
  common::Rng rng(config.seed);
  AdaptiveEqualizer equalizer(config.ffe_taps, config.dfe_taps, config.mu);

  const std::size_t delay = static_cast<std::size_t>(config.ffe_taps / 2);
  std::vector<int> tx_history;  // transmitted levels, for delayed reference
  std::vector<double> channel_history(channel.taps.size(), 0.0);

  std::uint64_t pre_bit_errors = 0, post_bit_errors = 0, counted_bits = 0;
  for (std::uint64_t n = 0; n < config.symbols; ++n) {
    const int tx = static_cast<int>(rng.UniformInt(4));
    tx_history.push_back(tx);
    std::rotate(channel_history.rbegin(), channel_history.rbegin() + 1,
                channel_history.rend());
    channel_history[0] = kLevels[tx];
    double received = rng.Gaussian(0.0, channel.noise_sigma);
    for (std::size_t k = 0; k < channel.taps.size(); ++k) {
      received += channel.taps[k] * channel_history[k];
    }

    const double equalized = equalizer.Equalize(received);
    const int decision = Slice(equalized);

    // The FFE delays by its cursor position; the reference symbol for both
    // adaptation and error counting is tx_history[n - delay]. Adapt before
    // pushing the new decision so the LMS gradient sees exactly the
    // histories the filter output was computed from (adapting against the
    // mutated DFE history injects a bias that slowly destabilizes the
    // feedback weights).
    if (tx_history.size() > delay) {
      const int reference = tx_history[tx_history.size() - 1 - delay];
      if (n < config.training_symbols) {
        equalizer.Adapt(kLevels[reference]);  // known training pattern
      } else {
        equalizer.Adapt(kLevels[decision]);  // decision-directed
        // Count errors only after training.
        counted_bits += 2;
        post_bit_errors +=
            static_cast<std::uint64_t>(GrayBitsDiffer(reference, decision));
        // Pre-equalization comparison: slicer directly on the channel
        // output aligned to the cursor tap (no delay).
        const int raw_decision = Slice(received);
        pre_bit_errors += static_cast<std::uint64_t>(GrayBitsDiffer(tx, raw_decision));
      }
    }
    equalizer.PushDecision(kLevels[decision]);
  }

  EqualizedLinkResult result;
  result.pre_eq_ber =
      counted_bits ? static_cast<double>(pre_bit_errors) / counted_bits : 0.0;
  result.post_eq_ber =
      counted_bits ? static_cast<double>(post_bit_errors) / counted_bits : 0.0;
  // Residual ISI: convolve channel with FFE weights and measure off-cursor
  // energy relative to the cursor.
  const auto& w = equalizer.ffe_weights();
  std::vector<double> combined(channel.taps.size() + w.size() - 1, 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t k = 0; k < channel.taps.size(); ++k) {
      combined[i + k] += w[i] * channel.taps[k];
    }
  }
  std::size_t cursor = 0;
  for (std::size_t i = 1; i < combined.size(); ++i) {
    if (std::abs(combined[i]) > std::abs(combined[cursor])) cursor = i;
  }
  double off = 0.0;
  for (std::size_t i = 0; i < combined.size(); ++i) {
    if (i != cursor) off += combined[i] * combined[i];
  }
  result.residual_isi = off / (combined[cursor] * combined[cursor]);
  return result;
}

}  // namespace lightwave::phy
