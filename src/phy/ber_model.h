// Analytic receiver BER model for thermal-noise-limited direct detection
// with multi-path interference, reproducing the simulated curves of
// Fig. 11a. The model is anchored to the transceiver's specified receiver
// sensitivity: at that received power with zero MPI the pre-FEC BER equals
// the KP4 threshold (2e-4).
//
// Signal model (per lane): PAM4 levels {0,1,2,3}*d where d is the level
// spacing in optical power; the mean received power is 1.5*d. The decision
// noise at level l combines
//   - thermal/TIA noise sigma_th (signal independent, fixed by the
//     sensitivity anchor), and
//   - MPI carrier beat noise with variance 2 * p_l * p_i where p_i is the
//     aggregate interferer power (signal dependent -> error floors at high
//     MPI, exactly the behaviour in Fig. 11).
#pragma once

#include "common/units.h"
#include "optics/transceiver.h"
#include "phy/oim.h"

namespace lightwave::phy {

/// The pre-FEC BER threshold of the standard KP4 (RS(544,514)) outer code.
inline constexpr double kKp4BerThreshold = 2e-4;

/// Beat-noise variance coefficient: var = kBeatVariance * p_level * p_int.
/// The single-tone heterodyne beat gives 2; the production links see several
/// coherent reflection terms plus polarization wander, so the calibrated
/// worst-case figure is higher (chosen to reproduce the Fig. 11 penalty of
/// >1 dB at -32 dB MPI). The Monte-Carlo channel derives its per-tone
/// amplitude from the same constant.
inline constexpr double kBeatVariance = 6.0;

class BerModel {
 public:
  /// Anchors the model at (sensitivity, threshold) for the given modulation.
  BerModel(optics::Modulation modulation, common::DbmPower sensitivity,
           double anchor_ber = kKp4BerThreshold);

  /// Convenience: build from a transceiver spec.
  static BerModel ForTransceiver(const optics::TransceiverSpec& spec);

  /// Pre-FEC BER at received power `rx` with aggregate interference `mpi`
  /// (dB relative to carrier; pass Decibel{-400} for none).
  double PreFecBer(common::DbmPower rx, common::Decibel mpi) const;

  /// Same, with the OIM notch filter applied to the interference first.
  double PreFecBerWithOim(common::DbmPower rx, common::Decibel mpi, const OimFilter& oim,
                          double offset_ghz = 0.0) const;

  /// The received power at which the BER equals `target_ber` under the given
  /// interference, found by bisection. Returns the power in dBm; +inf dBm
  /// (DbmPower{1e9}) when the BER floors above the target at any power.
  common::DbmPower SensitivityAt(double target_ber, common::Decibel mpi) const;

  /// Sensitivity delta (positive = improvement) from enabling OIM at the
  /// given MPI level; the Fig. 11 ">1 dB at -32 dB MPI" metric.
  common::Decibel OimGain(common::Decibel mpi, const OimFilter& oim,
                          double target_ber = kKp4BerThreshold) const;

  optics::Modulation modulation() const { return modulation_; }
  double thermal_sigma() const { return sigma_th_; }

 private:
  optics::Modulation modulation_;
  common::DbmPower sensitivity_;
  double sigma_th_;  // in the same linear-power units as level spacing (mW)

  /// BER for mean optical power `p_mw` and interferer power `pi_mw`.
  double BerAt(double p_mw, double pi_mw) const;
};

/// Q-argument required for a given BER under the modulation's boundary
/// counting (NRZ: BER = Q(q); PAM4 Gray-coded: BER = 0.75*Q(q)).
double RequiredQ(optics::Modulation modulation, double ber);

}  // namespace lightwave::phy
