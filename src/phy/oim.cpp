#include "phy/oim.h"

#include <algorithm>
#include <cmath>

namespace lightwave::phy {

common::Decibel OimFilter::Mitigate(common::Decibel mpi, double offset_ghz) const {
  const bool locked = std::abs(offset_ghz) <= config_.tracking_range_ghz;
  const common::Decibel suppression =
      locked ? config_.suppression : config_.out_of_range_suppression;
  return mpi - suppression;
}

void OimTracker::Step(double true_offset_ghz, double noise_ghz) {
  const double measured = true_offset_ghz + noise_ghz;
  double correction = config_.loop_gain * (measured - notch_center_ghz_);
  correction = std::clamp(correction, -config_.max_slew_ghz, config_.max_slew_ghz);
  notch_center_ghz_ += correction;
}

common::Decibel OimTracker::SuppressionFor(double true_offset_ghz) const {
  const double err = TrackingErrorGhz(true_offset_ghz);
  const double half_width = config_.notch_width_ghz / 2.0;
  // Lorentzian notch: full suppression on center, half at the notch edge.
  const double fraction = 1.0 / (1.0 + (err / half_width) * (err / half_width));
  return common::Decibel{config_.locked_suppression.value() * fraction};
}

common::Decibel OimTracker::Mitigate(common::Decibel mpi, double true_offset_ghz) const {
  return mpi - SuppressionFor(true_offset_ghz);
}

}  // namespace lightwave::phy
