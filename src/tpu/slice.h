// Slices (§4.2): a slice is a 3D torus of a x b x c cubes (4a x 4b x 4c
// chips) composed by programming the lightwave fabric. The minimum increment
// is one 4x4x4 cube; a full 4096-chip pod ranges from 4x4x256 to 16x16x16
// chips. This module turns a shape plus a cube assignment into the exact
// per-OCS north->south connection sets, and computes the topology metrics
// (bisection bandwidth, diameter) the evaluation relies on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "tpu/cube.h"
#include "tpu/wiring.h"

namespace lightwave::tpu {

/// Shape in cube units; chip shape is 4a x 4b x 4c.
struct SliceShape {
  int a = 1;
  int b = 1;
  int c = 1;

  int CubeCount() const { return a * b * c; }
  int ChipCount() const { return CubeCount() * kChipsPerCube; }
  int ChipDim(Dim d) const;
  std::string ToString() const;        // chip dims, e.g. "16x16x16"
  std::string ToCubeString() const;    // cube dims, e.g. "4x4x4"
  auto operator<=>(const SliceShape&) const = default;
};

/// All ordered shapes with the given cube count (e.g. 64 -> (1,1,64),
/// (1,64,1), ..., (4,4,4)).
std::vector<SliceShape> EnumerateShapes(int cubes);
/// Only shapes unique up to permutation, smallest dims first.
std::vector<SliceShape> EnumerateCanonicalShapes(int cubes);

/// A slice: shape plus the physical cube occupying each logical position.
class SliceTopology {
 public:
  /// `cube_ids[i]` is the physical cube at logical position i, row-major
  /// with the `a` dimension fastest. Fails unless cube_ids.size() matches
  /// the shape and ids are unique.
  static common::Result<SliceTopology> Create(SliceShape shape, std::vector<int> cube_ids);

  const SliceShape& shape() const { return shape_; }
  const std::vector<int>& cube_ids() const { return cube_ids_; }

  int CubeAt(int ia, int ib, int ic) const;

  /// The inter-cube connections this slice needs, per OCS (keyed by the
  /// plan's OCS id; value maps north port -> south port). Every ring along
  /// every dimension appears in all `ocs_per_dim` face-position OCSes of
  /// that dimension.
  std::map<int, std::map<int, int>> OcsConnections(const WiringPlan& plan) const;

  /// Optical links crossing the worst-case bisection of the slice (the
  /// paper's figure of merit for shape quality; 16x16x16 maximizes it).
  int BisectionLinks(const WiringPlan& plan) const;
  /// Bisection links across one specific dimension.
  int BisectionLinksAcross(Dim d, const WiringPlan& plan) const;

  /// Hop diameter of the cube-level torus (max over dims of floor(len/2)).
  int CubeDiameter() const;

 private:
  SliceTopology(SliceShape shape, std::vector<int> cube_ids)
      : shape_(shape), cube_ids_(std::move(cube_ids)) {}

  SliceShape shape_;
  std::vector<int> cube_ids_;
};

}  // namespace lightwave::tpu
