#include "tpu/ndtorus.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace lightwave::tpu {

NdTorus::NdTorus(std::vector<int> dims) : dims_(std::move(dims)) {
  assert(!dims_.empty());
  for (int d : dims_) {
    assert(d >= 1);
    (void)d;
  }
  std::sort(dims_.rbegin(), dims_.rend());
}

NdTorus NdTorus::Balanced(int dimensions, int nodes) {
  assert(dimensions >= 1 && nodes >= 1);
  // Greedy: repeatedly split off the largest factor <= nodes^(1/remaining).
  std::vector<int> dims;
  long long remaining = nodes;
  for (int d = dimensions; d >= 1; --d) {
    if (d == 1) {
      dims.push_back(static_cast<int>(remaining));
      break;
    }
    const int target = static_cast<int>(
        std::round(std::pow(static_cast<double>(remaining), 1.0 / d)));
    // Find the divisor of `remaining` closest to target.
    int best = 1;
    for (int f = 1; static_cast<long long>(f) * f <= remaining; ++f) {
      if (remaining % f != 0) continue;
      const int g = static_cast<int>(remaining / f);
      for (int candidate : {f, g}) {
        if (std::abs(candidate - target) < std::abs(best - target)) best = candidate;
      }
    }
    dims.push_back(best);
    remaining /= best;
  }
  return NdTorus(std::move(dims));
}

long long NdTorus::NodeCount() const {
  long long n = 1;
  for (int d : dims_) n *= d;
  return n;
}

std::string NdTorus::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << "x";
    out << dims_[i];
  }
  return out.str();
}

int NdTorus::LinksPerNode() const {
  int links = 0;
  for (int d : dims_) {
    if (d >= 3) {
      links += 2;
    } else if (d == 2) {
      links += 1;
    }
  }
  return links;
}

long long NdTorus::BisectionLinks() const {
  // Worst planar cut severs the longest dimension; every ring along it
  // crosses twice (wraparound), one ring per node of the cross-section.
  const int longest = dims_.front();
  if (longest < 2) return 0;
  const long long cross_section = NodeCount() / longest;
  return 2 * cross_section;
}

int NdTorus::Diameter() const {
  int total = 0;
  for (int d : dims_) total += d / 2;
  return total;
}

double NdTorus::MeanDistance() const {
  double total = 0.0;
  for (int d : dims_) {
    double sum = 0.0;
    for (int delta = 0; delta < d; ++delta) sum += std::min(delta, d - delta);
    total += sum / d;
  }
  return total;
}

double NdTorus::AllReduceUs(double bytes, const IciLinkSpec& spec,
                            double optical_fraction) const {
  const double gbytes_per_us = 2.0 * spec.bandwidth_gbps / 8.0 / 1e6;
  const double hop_us = optical_fraction * spec.optical_hop_us +
                        (1.0 - optical_fraction) * spec.electrical_hop_us;
  double shard = bytes;
  double bandwidth_us = 0.0;
  double latency_us = 0.0;
  // Reduce-scatter down each dimension, then all-gather back: per dim of
  // length L the two phases move 2 * shard * (L-1)/L and cost 2*(L-1) hops.
  for (int d : dims_) {
    if (d < 2) continue;
    bandwidth_us += 2.0 * (shard / 1e9) * (d - 1) / d / gbytes_per_us;
    latency_us += 2.0 * (d - 1) * hop_us;
    shard /= d;
  }
  return bandwidth_us + latency_us;
}

std::vector<TorusComparisonRow> CompareTorusDimensionalities(
    int nodes, const std::vector<int>& dimensionalities, double bytes,
    const IciLinkSpec& spec) {
  std::vector<TorusComparisonRow> rows;
  for (int d : dimensionalities) {
    TorusComparisonRow row{.torus = NdTorus::Balanced(d, nodes)};
    row.bisection_links = row.torus.BisectionLinks();
    row.diameter = row.torus.Diameter();
    row.mean_distance = row.torus.MeanDistance();
    row.links_per_node = row.torus.LinksPerNode();
    row.allreduce_us = row.torus.AllReduceUs(bytes, spec);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace lightwave::tpu
