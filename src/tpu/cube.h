// The elemental compute building block (Appendix A): a 4x4x4 = 64-chip TPU
// v4 cube, statically wired with electrical ICI inside one rack. 16 CPU
// hosts carry 4 TPUs each. The six faces expose 4x4 = 16 optical links each;
// opposing faces of a dimension land on the same OCS so a ring can wrap.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lightwave::tpu {

inline constexpr int kCubeEdge = 4;                          // chips per edge
inline constexpr int kChipsPerCube = kCubeEdge * kCubeEdge * kCubeEdge;  // 64
inline constexpr int kChipsPerHost = 4;
inline constexpr int kHostsPerCube = kChipsPerCube / kChipsPerHost;      // 16
inline constexpr int kFaceLinks = kCubeEdge * kCubeEdge;                 // 16
inline constexpr int kCubeFaces = 6;
inline constexpr int kOpticalLinksPerCube = kCubeFaces * kFaceLinks;     // 96

/// Torus dimensions.
enum class Dim : int { kX = 0, kY = 1, kZ = 2 };

inline constexpr std::array<Dim, 3> kAllDims = {Dim::kX, Dim::kY, Dim::kZ};

const char* ToString(Dim dim);

/// Chip coordinate within a cube, each component in [0, 4).
struct ChipCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  auto operator<=>(const ChipCoord&) const = default;
};

struct TpuChip {
  int index = 0;  // within cube, row-major (x fastest)
  ChipCoord coord;
  bool healthy = true;
};

struct CpuHost {
  int index = 0;
  bool healthy = true;
};

/// Hardware state of one rack-sized cube.
class Cube {
 public:
  explicit Cube(int id);

  int id() const { return id_; }

  const TpuChip& chip(int index) const { return chips_[static_cast<std::size_t>(index)]; }
  const CpuHost& host(int index) const { return hosts_[static_cast<std::size_t>(index)]; }
  int chip_count() const { return kChipsPerCube; }
  int host_count() const { return kHostsPerCube; }

  /// A cube participates in slices only when every host (and hence every
  /// chip) is healthy — the scheduling granularity is the whole cube.
  bool Healthy() const;

  void SetHostHealth(int host, bool healthy);
  void SetChipHealth(int chip, bool healthy);
  /// Repairs everything (post-maintenance).
  void Restore();

  static ChipCoord CoordOf(int chip_index);
  static int IndexOf(ChipCoord coord);
  /// The host that owns a chip (4 chips per host, consecutive indices).
  static int HostOf(int chip_index);

 private:
  int id_;
  std::vector<TpuChip> chips_;
  std::vector<CpuHost> hosts_;
};

}  // namespace lightwave::tpu
