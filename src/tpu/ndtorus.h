// Higher-dimensional torus analysis (§6 future work): "supporting
// higher-dimensional topologies such as a 4D or 6D torus that has a larger
// bisection bandwidth, lower latency and greater scalability compared to a
// 3D torus." This module generalizes the torus metrics to N dimensions so
// that the 3D-vs-4D-vs-6D trade-off can be quantified at fixed node count:
// bisection links, hop diameter, mean hop distance, per-node link (radix)
// cost, and the all-reduce cost on the dimension-ordered ring algorithm.
#pragma once

#include <string>
#include <vector>

#include "tpu/ici.h"

namespace lightwave::tpu {

class NdTorus {
 public:
  /// dims[i] >= 2 for a true ring in that dimension (length-1 dims are
  /// allowed and contribute nothing).
  explicit NdTorus(std::vector<int> dims);

  /// The most-balanced N-dimensional shape for `nodes` (factors as equal as
  /// possible, largest dims first); requires nodes to admit one.
  static NdTorus Balanced(int dimensions, int nodes);

  const std::vector<int>& dims() const { return dims_; }
  int dimension_count() const { return static_cast<int>(dims_.size()); }
  long long NodeCount() const;
  std::string ToString() const;

  /// Bidirectional links per node (torus radix): 2 per dimension of length
  /// >= 3, 1 for length-2 dimensions (the two directions coincide).
  int LinksPerNode() const;

  /// Links crossing the worst-case planar bisection: cutting the longest
  /// dimension severs 2 * (nodes / longest) rings... each ring crosses
  /// twice (wraparound), so links = 2 * nodes / longest.
  long long BisectionLinks() const;

  /// Hop diameter: sum over dims of floor(L/2).
  int Diameter() const;

  /// Mean shortest-path hops between uniform endpoints.
  double MeanDistance() const;

  /// All-reduce time for `bytes` using per-dimension rings (the
  /// dimension-ordered reduce-scatter/all-gather algorithm), all hops at
  /// `spec.electrical_hop_us`-class latency weighted by `optical_fraction`.
  double AllReduceUs(double bytes, const IciLinkSpec& spec = {},
                     double optical_fraction = 0.25) const;

 private:
  std::vector<int> dims_;
};

struct TorusComparisonRow {
  NdTorus torus;
  long long bisection_links = 0;
  int diameter = 0;
  double mean_distance = 0.0;
  int links_per_node = 0;
  double allreduce_us = 0.0;
};

/// Compares balanced 2D/3D/4D/6D tori at the same node count (the §6
/// argument). `bytes` sets the all-reduce payload.
std::vector<TorusComparisonRow> CompareTorusDimensionalities(
    int nodes, const std::vector<int>& dimensionalities, double bytes,
    const IciLinkSpec& spec = {});

}  // namespace lightwave::tpu
