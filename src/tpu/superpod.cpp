#include "tpu/superpod.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace lightwave::tpu {

using common::Result;
using common::Status;

Superpod::Superpod(std::uint64_t seed, int cubes, int ocs_per_dim)
    : plan_(cubes, ocs_per_dim) {
  assert(cubes <= ocs::kPalomarUsablePorts);
  common::Rng rng(seed);
  cubes_.reserve(static_cast<std::size_t>(cubes));
  for (int i = 0; i < cubes; ++i) cubes_.emplace_back(i);
  const int ocs_total = plan_.ocs_count();
  switches_.reserve(static_cast<std::size_t>(ocs_total));
  for (int i = 0; i < ocs_total; ++i) {
    switches_.push_back(std::make_unique<ocs::PalomarSwitch>(
        rng.NextU64(), "ocs-" + std::to_string(i)));
  }
  ocs_up_.assign(static_cast<std::size_t>(ocs_total), true);
}

Result<SliceId> Superpod::InstallSlice(const SliceTopology& topology) {
  return InstallSliceWithId(next_slice_id_, topology);
}

Result<SliceId> Superpod::InstallSliceWithId(SliceId slice_id,
                                             const SliceTopology& topology) {
  if (slices_.contains(slice_id)) {
    return common::AlreadyExists("slice id " + std::to_string(slice_id) + " taken");
  }
  for (int id : topology.cube_ids()) {
    if (id >= cube_count()) {
      return common::InvalidArgument("cube id out of range");
    }
    if (!cubes_[static_cast<std::size_t>(id)].Healthy()) {
      return common::FailedPrecondition("cube " + std::to_string(id) + " unhealthy");
    }
    if (cube_owner_.contains(id)) {
      return common::AlreadyExists("cube " + std::to_string(id) + " owned by a slice");
    }
  }

  auto wanted = topology.OcsConnections(plan_);
  // Single-cube slices have self-loop-only rings; they still program the
  // wraparound so the cube sees a closed 4x4x4 torus.
  double install_ms = 0.0;
  std::map<int, std::map<int, int>> installed;
  for (const auto& [ocs_id, new_conns] : wanted) {
    if (!ocs_up_[static_cast<std::size_t>(ocs_id)]) {
      return common::Unavailable("ocs " + std::to_string(ocs_id) + " is down");
    }
    ocs::PalomarSwitch& sw = ocs(ocs_id);
    // Merge: current connections stay; slice connections are added.
    std::map<int, int> target;
    for (const auto& conn : sw.Connections()) target[conn.north] = conn.south;
    const std::size_t before = target.size();
    for (const auto& [n, s] : new_conns) target[n] = s;
    if (target.size() != before + new_conns.size()) {
      return common::Internal("port conflict merging slice into ocs " +
                              std::to_string(ocs_id));
    }
    auto report = sw.Reconfigure(target);
    if (!report.ok()) return report.error();
    // The undisturbed guarantee: everything previously connected stayed.
    if (report.value().undisturbed.size() != before || !report.value().removed.empty()) {
      return common::Internal("reconfiguration disturbed existing slices");
    }
    install_ms = std::max(install_ms, report.value().duration_ms);
    installed[ocs_id] = new_conns;
  }

  if (slice_id >= next_slice_id_) next_slice_id_ = slice_id + 1;
  for (int cube_id : topology.cube_ids()) cube_owner_[cube_id] = slice_id;
  slices_.emplace(slice_id, InstalledSlice{
                                .id = slice_id,
                                .topology = topology,
                                .connections = std::move(installed),
                                .install_time_ms = install_ms,
                            });
  return slice_id;
}

void Superpod::SetNextSliceId(SliceId next) {
  if (next > next_slice_id_) next_slice_id_ = next;
}

Status Superpod::RemoveSlice(SliceId id) {
  auto it = slices_.find(id);
  if (it == slices_.end()) return common::NotFound("no such slice");
  for (const auto& [ocs_id, conns] : it->second.connections) {
    if (!ocs_up_[static_cast<std::size_t>(ocs_id)]) continue;  // down: nothing to tear
    ocs::PalomarSwitch& sw = ocs(ocs_id);
    std::map<int, int> target;
    for (const auto& conn : sw.Connections()) target[conn.north] = conn.south;
    for (const auto& [n, s] : conns) {
      auto t = target.find(n);
      if (t != target.end() && t->second == s) target.erase(t);
    }
    auto report = sw.Reconfigure(target);
    if (!report.ok()) return report.error();
  }
  for (int cube_id : it->second.topology.cube_ids()) cube_owner_.erase(cube_id);
  slices_.erase(it);
  return Status::Ok();
}

std::optional<SliceId> Superpod::SliceOwningCube(int cube_id) const {
  auto it = cube_owner_.find(cube_id);
  if (it == cube_owner_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> Superpod::FreeHealthyCubes() const {
  std::vector<int> free;
  for (int i = 0; i < cube_count(); ++i) {
    if (cubes_[static_cast<std::size_t>(i)].Healthy() && !cube_owner_.contains(i)) {
      free.push_back(i);
    }
  }
  return free;
}

void Superpod::FailOcs(int ocs_id) {
  assert(ocs_id >= 0 && ocs_id < ocs_count());
  ocs_up_[static_cast<std::size_t>(ocs_id)] = false;
}

void Superpod::RepairOcs(int ocs_id) {
  assert(ocs_id >= 0 && ocs_id < ocs_count());
  ocs_up_[static_cast<std::size_t>(ocs_id)] = true;
  // Mirror state is volatile: re-establish every connection the running
  // slices expect on this switch.
  ocs::PalomarSwitch& sw = ocs(ocs_id);
  std::map<int, int> target;
  for (const auto& conn : sw.Connections()) target[conn.north] = conn.south;
  for (const auto& [id, slice] : slices_) {
    auto it = slice.connections.find(ocs_id);
    if (it == slice.connections.end()) continue;
    for (const auto& [n, s] : it->second) target[n] = s;
  }
  (void)sw.Reconfigure(target);
}

bool Superpod::OcsHealthy(int ocs_id) const {
  assert(ocs_id >= 0 && ocs_id < ocs_count());
  return ocs_up_[static_cast<std::size_t>(ocs_id)];
}

bool Superpod::SliceDegraded(SliceId id) const {
  auto it = slices_.find(id);
  assert(it != slices_.end());
  const InstalledSlice& slice = it->second;
  for (int cube_id : slice.topology.cube_ids()) {
    if (!cubes_[static_cast<std::size_t>(cube_id)].Healthy()) return true;
  }
  if (slice.topology.cube_ids().size() > 1) {
    for (const auto& [ocs_id, conns] : slice.connections) {
      if (!ocs_up_[static_cast<std::size_t>(ocs_id)]) return true;
    }
  }
  return false;
}

double Superpod::TotalReconfigMs() const {
  double total = 0.0;
  for (const auto& sw : switches_) total += sw->telemetry().cumulative_switch_ms;
  return total;
}

}  // namespace lightwave::tpu
