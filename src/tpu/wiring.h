// Appendix-A wiring plan: each cube exposes 16 optical links per face; the
// "+" and "-" faces of a dimension land on the SAME OCS, so each of the
// 3 dims x 16 face positions = 48 OCSes carries one link pair from each of
// the 64 cubes. Wiring cube c's +face link (i,j) to OCS north port c and its
// -face link (i,j) to OCS south port c makes any ring over cubes — including
// a self-loop wraparound — a set of bijective north->south connections.
#pragma once

#include <cstdint>
#include <vector>

#include "tpu/cube.h"

namespace lightwave::tpu {

inline constexpr int kCubesPerPod = 64;
inline constexpr int kOcsPerDim = kFaceLinks;           // 16
inline constexpr int kOcsPerPod = 3 * kOcsPerDim;       // 48
inline constexpr int kChipsPerPod = kCubesPerPod * kChipsPerCube;  // 4096

/// One optical inter-cube link endpoint.
struct FacePort {
  int cube = 0;
  Dim dim = Dim::kX;
  bool positive = true;  // +face or -face
  int face_index = 0;    // 0..15, the (i,j) position on the face
};

/// Identifies an OCS within the pod and the ports a cube uses on it.
struct OcsAssignment {
  int ocs_id = 0;      // 0..47
  int north_port = 0;  // +face lands here
  int south_port = 0;  // -face lands here
};

class WiringPlan {
 public:
  /// Plan for `cubes` cubes with `ocs_per_dim` face positions per dimension
  /// (16 for the production pod).
  WiringPlan(int cubes = kCubesPerPod, int ocs_per_dim = kOcsPerDim);

  int cube_count() const { return cubes_; }
  int ocs_count() const { return 3 * ocs_per_dim_; }
  int ocs_per_dim() const { return ocs_per_dim_; }

  /// OCS carrying (dim, face_index); face_index in [0, ocs_per_dim).
  int OcsFor(Dim dim, int face_index) const;
  /// Port assignment for a cube on that OCS: cube c's +face -> north port c,
  /// -face -> south port c.
  OcsAssignment AssignmentFor(int cube, Dim dim, int face_index) const;

  /// Inverse mapping: which (dim, face_index) an OCS carries.
  Dim DimOfOcs(int ocs_id) const;
  int FaceIndexOfOcs(int ocs_id) const;

  /// Total optical links leaving each cube (96 for the production pod;
  /// bundled pairwise into 48 duplex OCS ports).
  int OpticalLinksPerCube() const { return 2 * 3 * ocs_per_dim_; }

 private:
  int cubes_;
  int ocs_per_dim_;
};

/// OCS count required for a pod as a function of transceiver technology
/// (§4.2.2): standard CWDM4 duplex needs 96, CWDM4 bidi 48, CWDM8 bidi 24.
int OcsCountForTransceiver(bool bidirectional, int wavelengths_per_fiber);

}  // namespace lightwave::tpu
