// The TPU v4 superpod (Fig. 14): 64 electrically-wired 4x4x4 cubes joined by
// a lightwave fabric of 48 Palomar OCSes. Slices are installed by merging
// their per-OCS connection sets into the running switch configurations;
// the switches' undisturbed-reconfiguration guarantee means installing or
// removing one slice never blips another (§4.2.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/result.h"
#include "ocs/palomar.h"
#include "tpu/cube.h"
#include "tpu/slice.h"
#include "tpu/wiring.h"

namespace lightwave::tpu {

using SliceId = std::uint64_t;

struct InstalledSlice {
  SliceId id = 0;
  SliceTopology topology;
  /// The connections the slice owns, per OCS (north -> south).
  std::map<int, std::map<int, int>> connections;
  double install_time_ms = 0.0;
};

class Superpod {
 public:
  explicit Superpod(std::uint64_t seed, int cubes = kCubesPerPod,
                    int ocs_per_dim = kOcsPerDim);

  int cube_count() const { return static_cast<int>(cubes_.size()); }
  int ocs_count() const { return static_cast<int>(switches_.size()); }
  const WiringPlan& plan() const { return plan_; }

  Cube& cube(int id) { return cubes_[static_cast<std::size_t>(id)]; }
  const Cube& cube(int id) const { return cubes_[static_cast<std::size_t>(id)]; }
  ocs::PalomarSwitch& ocs(int id) { return *switches_[static_cast<std::size_t>(id)]; }
  const ocs::PalomarSwitch& ocs(int id) const {
    return *switches_[static_cast<std::size_t>(id)];
  }

  /// Installs a slice. Fails (leaving the fabric untouched) when a cube is
  /// out of range, unhealthy, or already owned by a running slice, or when
  /// an OCS rejects the reconfiguration.
  common::Result<SliceId> InstallSlice(const SliceTopology& topology);

  /// Installs a slice under a caller-chosen id (recovery replay reinstalls
  /// journaled slices under their original ids so job -> slice references
  /// survive a restart). Same failure modes as InstallSlice, plus
  /// kAlreadyExists when the id is taken. The id counter advances past `id`
  /// so future InstallSlice calls never collide.
  common::Result<SliceId> InstallSliceWithId(SliceId id, const SliceTopology& topology);

  SliceId next_slice_id() const { return next_slice_id_; }
  /// Recovery hook: advances the slice-id counter (never rewinds), so a
  /// restored pod keeps minting fresh ids even when the latest slices were
  /// released before the crash.
  void SetNextSliceId(SliceId next);

  common::Status RemoveSlice(SliceId id);

  const std::map<SliceId, InstalledSlice>& slices() const { return slices_; }
  std::optional<SliceId> SliceOwningCube(int cube_id) const;

  /// Cubes that are healthy and not owned by any slice.
  std::vector<int> FreeHealthyCubes() const;

  /// --- failure injection ---------------------------------------------------
  void FailOcs(int ocs_id);
  void RepairOcs(int ocs_id);
  bool OcsHealthy(int ocs_id) const;

  /// A slice is degraded when any owning cube is unhealthy or any OCS
  /// carrying its connections is down. Single-cube slices never depend on
  /// the fabric (§4.2.2: "no reconfiguration between cubes is used").
  bool SliceDegraded(SliceId id) const;

  /// Wall-clock spent reconfiguring switches since construction.
  double TotalReconfigMs() const;

  /// Test-only corruption hooks for the slice-accounting validator's
  /// negative tests: write the slice tables directly, bypassing
  /// InstallSlice/RemoveSlice.
  void TestOnlySetCubeOwner(int cube_id, SliceId id) { cube_owner_[cube_id] = id; }
  /// Duplicates an installed slice's record under a fresh id without
  /// touching any switch: its cubes become double-booked.
  SliceId TestOnlyDuplicateSliceRecord(SliceId id) {
    InstalledSlice copy = slices_.at(id);
    copy.id = next_slice_id_++;
    return slices_.insert({copy.id, std::move(copy)}).first->first;
  }

 private:
  WiringPlan plan_;
  std::vector<Cube> cubes_;
  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches_;
  std::vector<bool> ocs_up_;
  std::map<SliceId, InstalledSlice> slices_;
  std::map<int, SliceId> cube_owner_;
  SliceId next_slice_id_ = 1;
};

}  // namespace lightwave::tpu
