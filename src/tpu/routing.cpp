#include "tpu/routing.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

namespace lightwave::tpu {

SliceChipCoord SliceChipDims(const SliceShape& shape) {
  return SliceChipCoord{
      .x = shape.ChipDim(Dim::kX),
      .y = shape.ChipDim(Dim::kY),
      .z = shape.ChipDim(Dim::kZ),
  };
}

namespace {

int& Component(SliceChipCoord& c, Dim d) {
  switch (d) {
    case Dim::kX: return c.x;
    case Dim::kY: return c.y;
    case Dim::kZ: return c.z;
  }
  return c.x;
}

int ComponentOf(const SliceChipCoord& c, Dim d) {
  switch (d) {
    case Dim::kX: return c.x;
    case Dim::kY: return c.y;
    case Dim::kZ: return c.z;
  }
  return c.x;
}

/// Whether stepping from `v` in `direction` crosses a cube boundary (and
/// therefore rides an optical OCS link — including the wraparound of a
/// single-cube dimension, which self-loops through the OCS).
bool CrossesBoundary(int v, int direction, int length) {
  if (direction > 0) {
    return ((v + 1) % length) % kCubeEdge == 0;
  }
  return v % kCubeEdge == 0;
}

}  // namespace

TorusRouter::TorusRouter(SliceShape shape, IciLinkSpec link_spec)
    : shape_(shape), link_spec_(link_spec) {
  assert(shape.a >= 1 && shape.b >= 1 && shape.c >= 1);
}

int TorusRouter::DimLengthChips(Dim d) const { return shape_.ChipDim(d); }

bool TorusRouter::Contains(const SliceChipCoord& c) const {
  return c.x >= 0 && c.x < DimLengthChips(Dim::kX) && c.y >= 0 &&
         c.y < DimLengthChips(Dim::kY) && c.z >= 0 && c.z < DimLengthChips(Dim::kZ);
}

Route TorusRouter::ComputeRoute(const SliceChipCoord& src, const SliceChipCoord& dst) const {
  assert(Contains(src) && Contains(dst));
  Route route;
  SliceChipCoord cur = src;
  for (Dim d : kAllDims) {
    const int length = DimLengthChips(d);
    const int from = ComponentOf(cur, d);
    const int to = ComponentOf(dst, d);
    int delta = (to - from) % length;
    if (delta < 0) delta += length;
    int direction = 1;
    int steps = delta;
    if (delta > length / 2) {  // shorter way around; ties break toward +
      direction = -1;
      steps = length - delta;
    }
    for (int s = 0; s < steps; ++s) {
      Hop hop;
      hop.dim = d;
      hop.direction = direction;
      hop.from = cur;
      const int v = ComponentOf(cur, d);
      hop.optical = CrossesBoundary(v, direction, length);
      int next = (v + direction) % length;
      if (next < 0) next += length;
      Component(cur, d) = next;
      hop.to = cur;
      route.hops.push_back(hop);
      if (hop.optical) {
        ++route.optical_hops;
        route.latency_us += link_spec_.optical_hop_us;
      } else {
        ++route.electrical_hops;
        route.latency_us += link_spec_.electrical_hop_us;
      }
    }
  }
  assert(cur == dst);
  return route;
}

int TorusRouter::Distance(const SliceChipCoord& src, const SliceChipCoord& dst) const {
  int total = 0;
  for (Dim d : kAllDims) {
    const int length = DimLengthChips(d);
    int delta = (ComponentOf(dst, d) - ComponentOf(src, d)) % length;
    if (delta < 0) delta += length;
    total += std::min(delta, length - delta);
  }
  return total;
}

int TorusRouter::DiameterHops() const {
  int total = 0;
  for (Dim d : kAllDims) total += DimLengthChips(d) / 2;
  return total;
}

double TorusRouter::MeanDistanceHops() const {
  double total = 0.0;
  for (Dim d : kAllDims) {
    const int length = DimLengthChips(d);
    // E[min(delta, L - delta)] over uniform delta in [0, L): L/4 for even L.
    double sum = 0.0;
    for (int delta = 0; delta < length; ++delta) {
      sum += std::min(delta, length - delta);
    }
    total += sum / length;
  }
  return total;
}

TorusRouter::LinkLoad TorusRouter::AnalyzeLoad(
    const std::vector<std::pair<SliceChipCoord, SliceChipCoord>>& pairs) const {
  // Directed link key: (x, y, z, dim, direction(0/1)).
  std::map<std::tuple<int, int, int, int, int>, std::pair<int, bool>> loads;
  LinkLoad result;
  for (const auto& [src, dst] : pairs) {
    const Route route = ComputeRoute(src, dst);
    result.total_hops += static_cast<std::int64_t>(route.hops.size());
    for (const auto& hop : route.hops) {
      auto key = std::make_tuple(hop.from.x, hop.from.y, hop.from.z,
                                 static_cast<int>(hop.dim), hop.direction > 0 ? 1 : 0);
      auto& entry = loads[key];
      ++entry.first;
      entry.second = hop.optical;
    }
  }
  double sum = 0.0;
  for (const auto& [key, entry] : loads) {
    sum += entry.first;
    if (entry.second) {
      result.peak_optical = std::max(result.peak_optical, entry.first);
    } else {
      result.peak_electrical = std::max(result.peak_electrical, entry.first);
    }
  }
  result.mean_load = loads.empty() ? 0.0 : sum / static_cast<double>(loads.size());
  return result;
}

}  // namespace lightwave::tpu
