// Inter-chip-interconnect (ICI) link parameters for TPU v4: per-direction
// link bandwidth and the per-hop latencies of the two link classes —
// electrical intra-cube and optical inter-cube through an OCS (which adds
// only deterministic propagation, §3.2.1).
#pragma once

namespace lightwave::tpu {

struct IciLinkSpec {
  /// Per-direction bandwidth of one ICI link in Gb/s (TPU v4 class,
  /// 50 GB/s).
  double bandwidth_gbps = 50.0 * 8.0;
  double electrical_hop_us = 0.3;
  double optical_hop_us = 0.5;
};

}  // namespace lightwave::tpu
