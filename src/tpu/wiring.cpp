#include "tpu/wiring.h"

#include <cassert>

namespace lightwave::tpu {

WiringPlan::WiringPlan(int cubes, int ocs_per_dim) : cubes_(cubes), ocs_per_dim_(ocs_per_dim) {
  assert(cubes > 0 && ocs_per_dim > 0);
}

int WiringPlan::OcsFor(Dim dim, int face_index) const {
  assert(face_index >= 0 && face_index < ocs_per_dim_);
  return static_cast<int>(dim) * ocs_per_dim_ + face_index;
}

OcsAssignment WiringPlan::AssignmentFor(int cube, Dim dim, int face_index) const {
  assert(cube >= 0 && cube < cubes_);
  return OcsAssignment{
      .ocs_id = OcsFor(dim, face_index),
      .north_port = cube,
      .south_port = cube,
  };
}

Dim WiringPlan::DimOfOcs(int ocs_id) const {
  assert(ocs_id >= 0 && ocs_id < ocs_count());
  return static_cast<Dim>(ocs_id / ocs_per_dim_);
}

int WiringPlan::FaceIndexOfOcs(int ocs_id) const {
  assert(ocs_id >= 0 && ocs_id < ocs_count());
  return ocs_id % ocs_per_dim_;
}

int OcsCountForTransceiver(bool bidirectional, int wavelengths_per_fiber) {
  // Each cube face has 16 links x 6 faces = 96 optical connections carrying
  // 8 optical lanes each (§4.2.2). With standard CWDM4 duplex modules each
  // connection needs two fibers (two OCS port pairs across the plan) -> 96
  // OCSes; CWDM4 bidi folds each link onto one strand -> 48; CWDM8 bidi
  // packs 8 lanes on one strand -> 24.
  const int base = 96;
  int count = bidirectional ? base / 2 : base;
  if (wavelengths_per_fiber >= 8) count /= 2;
  return count;
}

}  // namespace lightwave::tpu
