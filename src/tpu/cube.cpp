#include "tpu/cube.h"

#include <cassert>

namespace lightwave::tpu {

const char* ToString(Dim dim) {
  switch (dim) {
    case Dim::kX: return "x";
    case Dim::kY: return "y";
    case Dim::kZ: return "z";
  }
  return "?";
}

Cube::Cube(int id) : id_(id) {
  chips_.reserve(kChipsPerCube);
  for (int i = 0; i < kChipsPerCube; ++i) {
    chips_.push_back(TpuChip{.index = i, .coord = CoordOf(i), .healthy = true});
  }
  hosts_.reserve(kHostsPerCube);
  for (int i = 0; i < kHostsPerCube; ++i) {
    hosts_.push_back(CpuHost{.index = i, .healthy = true});
  }
}

bool Cube::Healthy() const {
  for (const auto& h : hosts_) {
    if (!h.healthy) return false;
  }
  for (const auto& c : chips_) {
    if (!c.healthy) return false;
  }
  return true;
}

void Cube::SetHostHealth(int host, bool healthy) {
  assert(host >= 0 && host < kHostsPerCube);
  hosts_[static_cast<std::size_t>(host)].healthy = healthy;
  // A host failure takes down its 4 TPUs.
  if (!healthy) {
    for (int c = host * kChipsPerHost; c < (host + 1) * kChipsPerHost; ++c) {
      chips_[static_cast<std::size_t>(c)].healthy = false;
    }
  }
}

void Cube::SetChipHealth(int chip, bool healthy) {
  assert(chip >= 0 && chip < kChipsPerCube);
  chips_[static_cast<std::size_t>(chip)].healthy = healthy;
}

void Cube::Restore() {
  for (auto& h : hosts_) h.healthy = true;
  for (auto& c : chips_) c.healthy = true;
}

ChipCoord Cube::CoordOf(int chip_index) {
  assert(chip_index >= 0 && chip_index < kChipsPerCube);
  return ChipCoord{
      .x = chip_index % kCubeEdge,
      .y = (chip_index / kCubeEdge) % kCubeEdge,
      .z = chip_index / (kCubeEdge * kCubeEdge),
  };
}

int Cube::IndexOf(ChipCoord coord) {
  assert(coord.x >= 0 && coord.x < kCubeEdge && coord.y >= 0 && coord.y < kCubeEdge &&
         coord.z >= 0 && coord.z < kCubeEdge);
  return coord.x + kCubeEdge * (coord.y + kCubeEdge * coord.z);
}

int Cube::HostOf(int chip_index) {
  assert(chip_index >= 0 && chip_index < kChipsPerCube);
  return chip_index / kChipsPerHost;
}

}  // namespace lightwave::tpu
