#include "tpu/slice.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace lightwave::tpu {

int SliceShape::ChipDim(Dim d) const {
  switch (d) {
    case Dim::kX: return a * kCubeEdge;
    case Dim::kY: return b * kCubeEdge;
    case Dim::kZ: return c * kCubeEdge;
  }
  return 0;
}

std::string SliceShape::ToString() const {
  std::ostringstream out;
  out << a * kCubeEdge << "x" << b * kCubeEdge << "x" << c * kCubeEdge;
  return out.str();
}

std::string SliceShape::ToCubeString() const {
  std::ostringstream out;
  out << a << "x" << b << "x" << c;
  return out.str();
}

std::vector<SliceShape> EnumerateShapes(int cubes) {
  std::vector<SliceShape> shapes;
  for (int a = 1; a <= cubes; ++a) {
    if (cubes % a != 0) continue;
    const int bc = cubes / a;
    for (int b = 1; b <= bc; ++b) {
      if (bc % b != 0) continue;
      shapes.push_back(SliceShape{a, b, bc / b});
    }
  }
  return shapes;
}

std::vector<SliceShape> EnumerateCanonicalShapes(int cubes) {
  std::set<std::array<int, 3>> seen;
  std::vector<SliceShape> canonical;
  for (const auto& s : EnumerateShapes(cubes)) {
    std::array<int, 3> key = {s.a, s.b, s.c};
    std::sort(key.begin(), key.end());
    if (seen.insert(key).second) {
      canonical.push_back(SliceShape{key[0], key[1], key[2]});
    }
  }
  return canonical;
}

common::Result<SliceTopology> SliceTopology::Create(SliceShape shape,
                                                    std::vector<int> cube_ids) {
  if (shape.a < 1 || shape.b < 1 || shape.c < 1) {
    return common::InvalidArgument("slice shape dims must be >= 1");
  }
  if (static_cast<int>(cube_ids.size()) != shape.CubeCount()) {
    return common::InvalidArgument("cube id count does not match shape");
  }
  std::set<int> unique(cube_ids.begin(), cube_ids.end());
  if (unique.size() != cube_ids.size()) {
    return common::InvalidArgument("duplicate cube id in slice");
  }
  for (int id : cube_ids) {
    if (id < 0) return common::InvalidArgument("negative cube id");
  }
  return SliceTopology(shape, std::move(cube_ids));
}

int SliceTopology::CubeAt(int ia, int ib, int ic) const {
  assert(ia >= 0 && ia < shape_.a && ib >= 0 && ib < shape_.b && ic >= 0 && ic < shape_.c);
  return cube_ids_[static_cast<std::size_t>(ia + shape_.a * (ib + shape_.b * ic))];
}

std::map<int, std::map<int, int>> SliceTopology::OcsConnections(const WiringPlan& plan) const {
  std::map<int, std::map<int, int>> connections;
  // For each dimension, walk every line of cubes along it and emit the ring
  // A+ -> B- for consecutive cubes (wrapping). Every face-position OCS of
  // that dimension carries an identical cube-level ring.
  auto emit_ring = [&](Dim dim, const std::vector<int>& ring) {
    for (int f = 0; f < plan.ocs_per_dim(); ++f) {
      const int ocs = plan.OcsFor(dim, f);
      auto& target = connections[ocs];
      const int n = static_cast<int>(ring.size());
      for (int k = 0; k < n; ++k) {
        const int from = ring[static_cast<std::size_t>(k)];
        const int to = ring[static_cast<std::size_t>((k + 1) % n)];
        // cube `from`'s +face (north port `from`) connects to cube `to`'s
        // -face (south port `to`); a 1-cube ring self-loops for wraparound.
        target[from] = to;
      }
    }
  };

  for (int ib = 0; ib < shape_.b; ++ib) {
    for (int ic = 0; ic < shape_.c; ++ic) {
      std::vector<int> ring;
      for (int ia = 0; ia < shape_.a; ++ia) ring.push_back(CubeAt(ia, ib, ic));
      emit_ring(Dim::kX, ring);
    }
  }
  for (int ia = 0; ia < shape_.a; ++ia) {
    for (int ic = 0; ic < shape_.c; ++ic) {
      std::vector<int> ring;
      for (int ib = 0; ib < shape_.b; ++ib) ring.push_back(CubeAt(ia, ib, ic));
      emit_ring(Dim::kY, ring);
    }
  }
  for (int ia = 0; ia < shape_.a; ++ia) {
    for (int ib = 0; ib < shape_.b; ++ib) {
      std::vector<int> ring;
      for (int ic = 0; ic < shape_.c; ++ic) ring.push_back(CubeAt(ia, ib, ic));
      emit_ring(Dim::kZ, ring);
    }
  }
  return connections;
}

int SliceTopology::BisectionLinksAcross(Dim d, const WiringPlan& plan) const {
  // Cutting the torus across dimension d: every cube-line along d crosses
  // the cut twice (wraparound), except length-1 lines whose self-loop never
  // leaves the cube. Each crossing carries `ocs_per_dim` optical links.
  int len = 0, lines = 0;
  switch (d) {
    case Dim::kX: len = shape_.a; lines = shape_.b * shape_.c; break;
    case Dim::kY: len = shape_.b; lines = shape_.a * shape_.c; break;
    case Dim::kZ: len = shape_.c; lines = shape_.a * shape_.b; break;
  }
  if (len < 2) return 0;  // cannot cut a length-1 dimension between cubes
  const int crossings_per_line = 2;
  return lines * crossings_per_line * plan.ocs_per_dim();
}

int SliceTopology::BisectionLinks(const WiringPlan& plan) const {
  int best = 0;
  bool any = false;
  for (Dim d : kAllDims) {
    const int links = BisectionLinksAcross(d, plan);
    if (links == 0) continue;  // length-1 dim: no inter-cube cut there
    best = any ? std::min(best, links) : links;
    any = true;
  }
  return any ? best : 0;
}

int SliceTopology::CubeDiameter() const {
  return shape_.a / 2 + shape_.b / 2 + shape_.c / 2;
}

}  // namespace lightwave::tpu
