// Chip-level routing on a slice torus. In normal operation "the routing is
// deterministic and set by the slice configuration" (§4.2.1): dimension-
// ordered shortest-path routing on the 3D torus, taking the shorter way
// around each ring (wraparound links included). Each hop is classified as
// electrical (intra-cube ICI) or optical (inter-cube, through an OCS),
// which gives per-path latency and lets the load analysis distinguish the
// two link classes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tpu/ici.h"
#include "tpu/slice.h"

namespace lightwave::tpu {

/// Chip coordinate within a slice (chip units, 0 <= v < 4*dim_cubes).
struct SliceChipCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  auto operator<=>(const SliceChipCoord&) const = default;
};

struct Hop {
  Dim dim = Dim::kX;
  /// +1 or -1 along the ring.
  int direction = 1;
  SliceChipCoord from;
  SliceChipCoord to;
  /// True when the hop crosses a cube boundary (rides an OCS link).
  bool optical = false;
};

struct Route {
  std::vector<Hop> hops;
  int electrical_hops = 0;
  int optical_hops = 0;
  double latency_us = 0.0;
};

/// Chips along each dim for a shape (4 * cube dims).
SliceChipCoord SliceChipDims(const SliceShape& shape);

class TorusRouter {
 public:
  explicit TorusRouter(SliceShape shape, IciLinkSpec link_spec = {});

  const SliceShape& shape() const { return shape_; }

  int DimLengthChips(Dim d) const;
  bool Contains(const SliceChipCoord& c) const;

  /// Dimension-ordered (x, then y, then z) shortest-path route; ties on
  /// ring direction break toward +.
  Route ComputeRoute(const SliceChipCoord& src, const SliceChipCoord& dst) const;

  /// Shortest-path hop distance (sum over dims of min(d, L-d)).
  int Distance(const SliceChipCoord& src, const SliceChipCoord& dst) const;

  /// Max shortest-path distance over all pairs.
  int DiameterHops() const;
  /// Mean per-dim shortest distance over uniform endpoints (closed form,
  /// L/4 per even-length dimension), summed over dims.
  double MeanDistanceHops() const;

  /// Link-load analysis: routes every (src, dst) pair and counts traversals
  /// per directed link.
  struct LinkLoad {
    int peak_electrical = 0;
    int peak_optical = 0;
    double mean_load = 0.0;  // over links that carried traffic
    std::int64_t total_hops = 0;
  };
  LinkLoad AnalyzeLoad(
      const std::vector<std::pair<SliceChipCoord, SliceChipCoord>>& pairs) const;

 private:
  SliceShape shape_;
  IciLinkSpec link_spec_;
};

}  // namespace lightwave::tpu
